// Elimination front-end under mixed inc/dec load, plus the adaptive
// backend's switch behavior — the two svc layers this bench exists to keep
// honest.
//
// Table A — hit-rate vs thread count: a 50/50 fetch_increment /
//           try_fetch_decrement mix on the batched network backend, with
//           and without the ElimCounter front-end. The elimination claims:
//           hit-rate > 0 once ≥2 threads collide, and network traversals
//           per op strictly below the plain backend's (paired ops never
//           enter the network).
// Table B — hit-rate vs mix ratio at a fixed thread count: collisions need
//           both streams, so the hit-rate should rise toward the balanced
//           50% mix and starve at inc-only.
// Table C — adaptive backend: balanced consume/refill traffic starting on
//           the central word; reports the observed stall rate and whether
//           the LoadStats probe triggered the central→network swap.
//
// After every run the conservation invariant is drained and recorded as a
// named check (--json + exit code), which CI gates on: successful
// decrements plus what remains in the pool must equal the increments,
// elimination included.
#include <cstdint>
#include <string>
#include <vector>

#include "cnet/svc/adaptive.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/elimination.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/table.hpp"
#include "support/loadgen.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

struct MixedRunResult {
  double ops_per_sec = 0.0;
  std::uint64_t incs = 0;
  std::uint64_t decs = 0;        // successful decrements only
  std::uint64_t ops = 0;         // incs + dec attempts (lifetime)
  std::uint64_t pairs = 0;       // eliminated inc/dec pairs
  std::uint64_t traversals = 0;  // tokens/antitokens into the network
  bool conserved = false;        // decs + drained remainder == incs
};

// Runs a mixed workload — each op is a decrement attempt with probability
// dec_percent/100, an increment otherwise — then drains the counter and
// verifies conservation.
MixedRunResult run_mixed(const svc::BackendSpec& spec, std::size_t threads,
                         unsigned dec_percent, bool smoke) {
  svc::BackendConfig cfg;
  // One exchange slot per thread: undersized arrays collapse when the
  // machine is oversubscribed and parked waiters hold every slot (see
  // EliminationLayer::Config::slots).
  cfg.elim.layer.slots = threads;
  const auto counter = svc::make_counter(spec, cfg);
  const auto* elim = dynamic_cast<const svc::ElimCounter*>(counter.get());

  struct alignas(util::kCacheLine) Tally {
    std::uint64_t incs = 0;
    std::uint64_t decs = 0;
    std::uint64_t ops = 0;
    std::uint64_t rng = 0;
  };
  std::vector<Tally> tallies(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    tallies[t].rng = 0x9e3779b97f4a7c15ULL * (t + 1) + 0xe11b;
  }

  bench::LoadGenConfig lg;
  lg.threads = threads;
  lg.warmup_seconds = smoke ? 0.01 : 0.1;
  lg.measure_seconds = smoke ? 0.05 : 0.5;
  // Smoke windows are small enough for a loaded CI runner to swallow
  // whole; the floor keeps every row non-vacuous.
  lg.min_ops_per_thread = 64;
  lg.latency_sample_every = 0;
  const auto loadgen = bench::run_loadgen(lg, [&](std::size_t t) {
    Tally& tally = tallies[t];
    ++tally.ops;
    if (util::xorshift64_star(tally.rng) % 100 < dec_percent) {
      if (counter->try_fetch_decrement(t)) ++tally.decs;
    } else {
      (void)counter->fetch_increment(t);
      ++tally.incs;
    }
    return std::uint64_t{1};
  });

  MixedRunResult result;
  result.ops_per_sec = loadgen.ops_per_sec;
  for (const auto& tally : tallies) {
    result.incs += tally.incs;
    result.decs += tally.decs;
    result.ops += tally.ops;
  }
  result.pairs = elim != nullptr ? elim->layer().pairs() : 0;
  result.traversals = counter->traversal_count();

  // Quiescent drain: everything the run left in the pool must be exactly
  // the inc/dec imbalance — elimination must not create or leak tokens.
  std::uint64_t drained = 0;
  for (std::uint64_t got;
       (got = counter->try_fetch_decrement_n(0, 256)) != 0;) {
    drained += got;
  }
  result.conserved = result.decs + drained == result.incs;
  return result;
}

std::string hit_rate_cell(const MixedRunResult& r) {
  // Both sides of a pair are eliminated ops.
  return util::fmt_double(
             r.ops == 0 ? 0.0
                        : 100.0 * 2.0 * static_cast<double>(r.pairs) /
                              static_cast<double>(r.ops),
             1) +
         "%";
}

std::string trav_per_op_cell(const MixedRunResult& r) {
  return util::fmt_double(r.ops == 0 ? 0.0
                                     : static_cast<double>(r.traversals) /
                                           static_cast<double>(r.ops),
                          3);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  const svc::BackendSpec plain{svc::BackendKind::kBatchedNetwork, false};
  const svc::BackendSpec elim{svc::BackendKind::kBatchedNetwork, true};

  const std::vector<std::size_t> thread_sweep =
      opts.smoke ? std::vector<std::size_t>{4}
                 : std::vector<std::size_t>{2, 4, 8};
  bench::section("Table A: elimination vs threads, 50/50 inc/dec mix");
  {
    util::Table table(
        {"backend", "thr", "ops/s", "hit-rate", "trav/op", "conserved"});
    for (const auto threads : thread_sweep) {
      for (const auto& spec : {plain, elim}) {
        const auto r = run_mixed(spec, threads, 50, opts.smoke);
        table.add_row({svc::backend_spec_name(spec), util::fmt_int(threads),
                       bench::fmt_rate(r.ops_per_sec), hit_rate_cell(r),
                       trav_per_op_cell(r), r.conserved ? "yes" : "NO"});
        // `ops > 0` folded in: a zero-op run conserves vacuously, and a
        // vacuous pass must read as a failure, not a green check.
        bench::check("A:conservation[" + svc::backend_spec_name(spec) + "," +
                         std::to_string(threads) + "thr,50%dec]",
                     r.conserved && r.ops > 0, opts);
      }
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: elim+ rows show hit-rate > 0 at >= 2 threads and\n"
        "strictly fewer network traversals per op — paired inc/dec ops\n"
        "cancel in the exchange slots and never enter the network. (On a\n"
        "single-core box the waiter's spin budget costs wall-clock, so the\n"
        "ops/s win needs real parallelism even though the traversal and\n"
        "hit-rate columns already show the mechanism working.)",
        opts);
  }

  std::puts("");
  const std::size_t mix_threads = 4;
  const std::vector<unsigned> mix_sweep =
      opts.smoke ? std::vector<unsigned>{50}
                 : std::vector<unsigned>{0, 25, 50};
  bench::section("Table B: elimination vs mix ratio, " +
                 std::to_string(mix_threads) + " threads");
  {
    util::Table table(
        {"backend", "dec%", "ops/s", "hit-rate", "trav/op", "conserved"});
    for (const auto dec_percent : mix_sweep) {
      const auto r = run_mixed(elim, mix_threads, dec_percent, opts.smoke);
      table.add_row({svc::backend_spec_name(elim),
                     util::fmt_int(dec_percent),
                     bench::fmt_rate(r.ops_per_sec), hit_rate_cell(r),
                     trav_per_op_cell(r), r.conserved ? "yes" : "NO"});
      bench::check("B:conservation[" + svc::backend_spec_name(elim) + "," +
                       std::to_string(mix_threads) + "thr," +
                       std::to_string(dec_percent) + "%dec]",
                   r.conserved && r.ops > 0, opts);
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: collisions need both streams — hit-rate rises\n"
        "toward the balanced mix and is zero on the inc-only row.",
        opts);
  }

  std::puts("");
  bench::section("Table C: adaptive backend, balanced consume/refill");
  {
    util::Table table({"thr", "ops/s", "stall rate", "switched", "serving"});
    for (const auto threads : thread_sweep) {
      svc::AdaptiveCounter::Config cfg;
      cfg.tuning.sample_interval = 512;
      cfg.tuning.min_window_ops = 1024;
      svc::AdaptiveCounter counter(cfg);

      std::vector<util::Padded<std::uint64_t>> credit(threads);
      bench::LoadGenConfig lg;
      lg.threads = threads;
      lg.warmup_seconds = opts.smoke ? 0.01 : 0.1;
      lg.measure_seconds = opts.smoke ? 0.05 : 0.5;
      lg.min_ops_per_thread = 64;
      lg.latency_sample_every = 0;
      const auto r = bench::run_loadgen(lg, [&](std::size_t t) {
        // Each thread alternates a 64-token refill with 64 consumes, so the
        // pool stays balanced and both counter paths see contention.
        if (credit[t].value == 0) {
          std::int64_t scratch[64];
          counter.fetch_increment_batch(t, 64, scratch);
          credit[t].value = 64;
          return std::uint64_t{64};
        }
        --credit[t].value;
        (void)counter.try_fetch_decrement(t);
        return std::uint64_t{1};
      });
      const double stall_rate =
          counter.stats().ops() == 0
              ? 0.0
              : static_cast<double>(counter.stall_count()) /
                    static_cast<double>(counter.stats().ops());
      table.add_row({util::fmt_int(threads), bench::fmt_rate(r.ops_per_sec),
                     util::fmt_double(stall_rate, 4),
                     counter.switched() ? "yes" : "no", counter.name()});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: on contended multi-core hardware the bounded-\n"
        "decrement CAS retries push the stall rate over the threshold and\n"
        "the counter swaps to the batched network mid-run; on an idle or\n"
        "single-core box it honestly stays central.",
        opts);
  }

  return bench::finish(opts);
}
