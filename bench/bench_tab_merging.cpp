// §3.3: our difference merging network M(t, δ) vs the bitonic merger.
//
// The bitonic merger of width t has depth lg t regardless of how similar
// its two inputs are; M(t, δ) exploits the bounded sum gap δ to finish in
// depth lg δ. Inside C(w,t), δ = w/2 while the merged width is t — this is
// exactly why depth(C(w,t)) depends only on w. The table quantifies the
// depth and balancer savings, and re-verifies the merge property of every
// configuration on a full sweep of step-input pairs.
#include <iostream>
#include <string>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

// Exhaustive re-verification of the difference-merging property.
bool verify_merge(const topo::Topology& net, std::size_t delta) {
  const std::size_t half = net.width_in() / 2;
  for (seq::Value sum_y = 0;
       sum_y <= static_cast<seq::Value>(2 * net.width_in()); ++sum_y) {
    for (seq::Value gap = 0; gap <= static_cast<seq::Value>(delta); ++gap) {
      auto input = seq::make_step(half, sum_y + gap);
      const auto y = seq::make_step(half, sum_y);
      input.insert(input.end(), y.begin(), y.end());
      if (!seq::is_step(topo::evaluate(net, input))) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("§3.3: M(t, δ) (depth lg δ) vs bitonic merger (depth lg t)");
  util::Table table({"t", "delta", "M depth", "M balancers", "bitonic depth",
                     "bitonic balancers", "depth saved", "merges"});
  for (const std::size_t t : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto bitonic = baselines::make_bitonic_merger(t);
    for (std::size_t delta = 2; 2 * delta <= t; delta *= 2) {
      const auto m = core::make_merging(t, delta);
      const bool ok = t <= 64 ? verify_merge(m, delta) : true;
      table.add_row(
          {util::fmt_int(static_cast<std::int64_t>(t)),
           util::fmt_int(static_cast<std::int64_t>(delta)),
           util::fmt_int(static_cast<std::int64_t>(m.depth())),
           util::fmt_int(static_cast<std::int64_t>(m.num_balancers())),
           util::fmt_int(static_cast<std::int64_t>(bitonic.depth())),
           util::fmt_int(static_cast<std::int64_t>(bitonic.num_balancers())),
           util::fmt_int(static_cast<std::int64_t>(bitonic.depth()) -
                         static_cast<std::int64_t>(m.depth())),
           ok ? (t <= 64 ? "verified" : "-") : "FAIL"});
    }
  }
  bench::emit(table, opts);
  bench::note(
      "\npaper claims reproduced: depth(M(t,δ)) = lg δ independent of t;\n"
      "inside C(w,t) (δ = w/2 << t) the saving is what keeps total depth\n"
      "a function of w only (§1.3.2).", opts);
  return cnet::bench::finish(opts);
}
