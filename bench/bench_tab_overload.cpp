// The overload manager's tiered ladder, live and in virtual time — the
// graceful-shedding subsystem ISSUE 6 builds over the counting-network
// service layer.
//
// Table E — svc::OverloadManager over a real AdmissionController and
//           QuotaHierarchy: a scripted GaugeMonitor ramps pressure
//           0 → 0.97 → 0 and every tier's actuation is verified in place —
//           tier 1 publishes the batch divisor, tier 3 degrades both the
//           admission charge (Ticket::charged < cost) and the quota grant
//           (parts < asked, recorded exactly), tier 4 sheds the
//           lowest-weight tenants (policy shed_set) while held grants stay
//           releasable, and the descent restores them under hysteresis.
//           The cell ends with an exact-drain conservation audit.
// Table E′ — sim::simulate_overload: the same control loop on staggered
//           simulated cores ramping past saturation, where the full
//           escalate→shed→recover trace (and its transition instants) is
//           deterministic on any host.
//
// Named checks (--json + exit code, the artifact CI gates on):
//   E:ladder[spec]       — observed tier at every script step matches the
//       hysteretic expectation, and history() records exactly the expected
//       transitions in order;
//   E:degrade[spec]      — nominal admission stays all-or-nothing; under
//       tier 3 the short pool admits partially with the exact charge and
//       grant parts reported;
//   E:shed_restore[spec] — tier 4 sheds exactly shed_set's pick, shed
//       acquires reject without touching pools, unshed tenants still
//       admit, and the descent restores everyone;
//   E:conservation[spec] — after releasing every grant and refunding every
//       charge, all pools drain to exactly their initial counts with zero
//       outstanding borrow;
//   overload_actions_monotone   — the tier→action table only accumulates
//       interventions as tiers rise (pure policy scan);
//   overload_shed_conservation  — every live cell's post-cycle drain was
//       exact;
//   overload_recovery_hysteresis — every live ladder descended through the
//       hysteresis band correctly, and every simulated trace satisfied the
//       per-transition hysteresis predicate;
//   overload_sim_conservation / overload_sim_recovered — the model mirror,
//       for every backend spec;
//   overload_sim_full_ladder    — the reference workload drives the
//       central-word parent through the complete ladder: peak tier 4,
//       genuinely short (degraded) grants, and shed-time force-refunds;
//   overload_sim_determinism    — a re-run with the same seed reproduces
//       the headline cell bit-identically, transition instants included.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnet/sim/multicore.hpp"
#include "cnet/svc/admission.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

// The scripted pressure ramp (gauge value out of 100) and the tier the
// hysteretic rule must be in after evaluating each step. The descent
// values sit inside the hysteresis bands: 0.80 releases tier 4 (<= 0.85)
// but holds tier 3 (> 0.75), 0.55 holds tier 1 (> 0.40) after tiers 3 and
// 2 let go.
struct ScriptStep {
  std::uint64_t gauge;
  svc::OverloadTier expect;
};
constexpr ScriptStep kScript[] = {
    {0, svc::OverloadTier::kNominal},
    {55, svc::OverloadTier::kShrinkBatch},
    {75, svc::OverloadTier::kForceEliminate},
    {88, svc::OverloadTier::kDegradePartial},
    {97, svc::OverloadTier::kShedTenants},
    {80, svc::OverloadTier::kDegradePartial},
    {55, svc::OverloadTier::kShrinkBatch},
    {5, svc::OverloadTier::kNominal},
};

constexpr std::uint64_t kChildInitial = 2;
// The parent pool is deliberately smaller than the weight-2 tenant's
// borrow cap: the reservation commits in full (reserve_borrow is
// all-or-nothing, degrade or not) but the pool take comes up short, which
// is exactly the shape the degrade-partial tier exists for.
constexpr std::uint64_t kParentInitial = 1;
constexpr std::uint64_t kBorrowBudget = 8;  // weights {4,2,1,1} -> limits
constexpr std::uint64_t kQuotaAsk = 4;      // degraded quota acquire
constexpr std::uint64_t kAdmitPool = 3;     // admission bucket pool
constexpr std::uint64_t kAdmitCost = 8;     // degraded admission charge

struct LiveCellResult {
  std::string ladder;              // observed tier at each step
  bool ladder_ok = false;          // tiers + recorded history both match
  bool degrade_ok = false;         // exact partial charge + grant parts
  bool shed_ok = false;            // shed set, shed reject, restore
  bool conserved = false;          // exact drain after the full cycle
  std::uint64_t quota_granted = 0; // degraded grant tokens (of kQuotaAsk)
  std::uint64_t admit_charged = 0; // degraded ticket charge (of kAdmitCost)
  std::vector<std::size_t> shed;   // tenants shed at tier 4
};

// One Table E cell: a hierarchy (4 tenants, weights {4,2,1,1}) and an
// admission controller on the same backend spec, governed by one manager
// whose only meaningful signal is the scripted gauge (the real stall /
// reject / borrow monitors are registered too, but a single-threaded
// script keeps them well below the gauge — the max-combine makes the
// script the driver).
LiveCellResult run_live_cell(const svc::BackendSpec& spec) {
  svc::QuotaHierarchy::Config qcfg;
  qcfg.parent = spec;
  qcfg.parent_initial_tokens = kParentInitial;
  qcfg.borrow_budget = kBorrowBudget;
  std::vector<svc::QuotaHierarchy::TenantConfig> tenants(4);
  const std::uint64_t weights[4] = {4, 2, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    tenants[i].initial_tokens = kChildInitial;
    tenants[i].weight = weights[i];
  }
  svc::QuotaHierarchy hierarchy(qcfg, std::move(tenants));

  svc::AdmissionConfig acfg;
  acfg.backend = spec.kind;
  acfg.elimination = spec.elimination;
  acfg.bucket.initial_tokens = kAdmitPool;
  svc::AdmissionController admission(acfg);

  svc::OverloadManager manager;  // default thresholds, shed_fraction 0.25
  auto gauge_owner = std::make_unique<svc::GaugeMonitor>("script", 100);
  svc::GaugeMonitor* gauge = gauge_owner.get();
  manager.add_monitor(std::move(gauge_owner));
  manager.add_monitor(
      svc::make_stall_rate_monitor(hierarchy.parent(), /*saturation=*/8.0));
  manager.add_monitor(svc::make_reject_ratio_monitor(hierarchy.parent()));
  manager.add_monitor(std::make_unique<svc::BorrowPressureMonitor>(hierarchy));
  manager.govern(hierarchy);
  admission.attach_overload(&manager);

  LiveCellResult res;
  res.ladder_ok = true;
  res.degrade_ok = true;
  res.shed_ok = true;

  // Nominal baseline: all-or-nothing holds — a short pool rejects with
  // nothing charged and nothing consumed.
  {
    const auto t = admission.admit(0, kAdmitCost);
    res.degrade_ok = res.degrade_ok && !t.admitted && t.charged == 0;
  }
  // A low-weight tenant takes a grant *before* the ramp and holds it
  // across being shed: live shedding leaves held grants valid (release
  // keeps working), so the cycle must still conserve exactly.
  svc::QuotaHierarchy::Grant held_across_shed = hierarchy.acquire(0, 3, 1);
  res.shed_ok = res.shed_ok && held_across_shed.admitted;

  svc::QuotaHierarchy::Grant degraded_grant;
  svc::AdmissionController::Ticket degraded_ticket;

  for (const auto& step : kScript) {
    gauge->set(step.gauge);
    const auto tier = manager.evaluate();
    if (!res.ladder.empty()) res.ladder += '-';
    res.ladder += std::to_string(static_cast<int>(tier));
    res.ladder_ok = res.ladder_ok && tier == step.expect;

    if (step.expect == svc::OverloadTier::kShrinkBatch &&
        res.shed.empty()) {
      // Tier 1's action is published through actions(): refill chunking
      // divides by the policy constant.
      res.ladder_ok = res.ladder_ok &&
                      manager.actions().batch_divisor ==
                          svc::kOverloadBatchDivisor;
    } else if (step.expect == svc::OverloadTier::kDegradePartial &&
               !degraded_grant.admitted) {
      // Tier 3, on the way up: both degrade paths produce exact partials.
      // Quota: child has 2, the weight-2 tenant reserves its full cap of 2
      // but the parent pool holds only 1 — an ask of 4 admits with exactly
      // 3, parts recorded, and the unused headroom is unreserved so the
      // outstanding borrow equals the parent part release() will return.
      degraded_grant = hierarchy.acquire(0, 1, kQuotaAsk);
      res.quota_granted = degraded_grant.tokens();
      res.degrade_ok = res.degrade_ok && degraded_grant.admitted &&
                       degraded_grant.from_child == kChildInitial &&
                       degraded_grant.from_parent == kParentInitial &&
                       hierarchy.borrowed(1) == kParentInitial;
      // Admission: pool of 3 against a cost of 8 charges exactly 3.
      degraded_ticket = admission.admit(0, kAdmitCost);
      res.admit_charged = degraded_ticket.charged;
      res.degrade_ok = res.degrade_ok && degraded_ticket.admitted &&
                       degraded_ticket.charged == kAdmitPool;
    } else if (step.expect == svc::OverloadTier::kShedTenants) {
      // Tier 4: shed_set over weights {4,2,1,1} at fraction 0.25 sheds
      // weight 2 of 8 — the two weight-1 tenants, highest index first,
      // reported ascending.
      res.shed = manager.shed_tenants();
      res.shed_ok = res.shed_ok &&
                    res.shed == std::vector<std::size_t>{2, 3} &&
                    hierarchy.is_shed(2) && hierarchy.is_shed(3) &&
                    !hierarchy.is_shed(0);
      // A shed tenant rejects before touching any pool; an unshed one
      // still admits.
      const auto shed_try = hierarchy.acquire(0, 2, 1);
      res.shed_ok = res.shed_ok && !shed_try.admitted;
      const auto alive = hierarchy.acquire(0, 0, 1);
      res.shed_ok = res.shed_ok && alive.admitted;
      if (alive.admitted) hierarchy.release(0, alive);
    } else if (step.gauge == 80) {
      // Descent out of tier 4: the restore fired and the tenant admits
      // again (tier 3 is still degrade, so a 1-token ask in a live child
      // is an exact full grant either way).
      res.shed_ok = res.shed_ok && manager.shed_tenants().empty() &&
                    !hierarchy.is_shed(2) && !hierarchy.is_shed(3);
      const auto back = hierarchy.acquire(0, 2, 1);
      res.shed_ok = res.shed_ok && back.admitted;
      if (back.admitted) hierarchy.release(0, back);
    }
  }

  // history() must hold exactly the script's transitions, in order.
  const auto history = manager.history();
  const svc::OverloadTier expected_path[] = {
      svc::OverloadTier::kNominal,        svc::OverloadTier::kShrinkBatch,
      svc::OverloadTier::kForceEliminate, svc::OverloadTier::kDegradePartial,
      svc::OverloadTier::kShedTenants,    svc::OverloadTier::kDegradePartial,
      svc::OverloadTier::kShrinkBatch,    svc::OverloadTier::kNominal,
  };
  res.ladder_ok = res.ladder_ok && history.size() == 7;
  if (history.size() == 7) {
    for (std::size_t i = 0; i < 7; ++i) {
      res.ladder_ok = res.ladder_ok &&
                      history[i].from == expected_path[i] &&
                      history[i].to == expected_path[i + 1];
    }
  }

  // Undo everything through the exact-refund paths, then audit: every pool
  // back at its initial count, zero outstanding borrow.
  if (degraded_grant.admitted) hierarchy.release(0, degraded_grant);
  if (held_across_shed.admitted) hierarchy.release(0, held_across_shed);
  if (degraded_ticket.admitted) {
    admission.bucket().refund(0, degraded_ticket.charged);
  }
  bool conserved = true;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t drained = 0;
    while (hierarchy.child(i).consume(0, 1, svc::kPartialOk) == 1) {
      ++drained;
    }
    conserved = conserved && drained == kChildInitial &&
                hierarchy.borrowed(i) == 0;
  }
  std::uint64_t parent_drained = 0;
  while (hierarchy.parent().consume(0, 1, svc::kPartialOk) == 1) {
    ++parent_drained;
  }
  std::uint64_t admit_drained = 0;
  while (admission.bucket().consume(0, 1, svc::kPartialOk) == 1) {
    ++admit_drained;
  }
  res.conserved = conserved && parent_drained == kParentInitial &&
                  admit_drained == kAdmitPool;
  return res;
}

std::string shed_cell(const std::vector<std::size_t>& shed) {
  std::string out = "{";
  for (std::size_t i = 0; i < shed.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(shed[i]);
  }
  return out + "}";
}

// The tier→action table may only accumulate interventions as tiers rise:
// no boolean ever turns back off at a higher tier, and the batch divisor
// never shrinks. Pure policy scan — no counters involved.
bool actions_monotone() {
  bool ok = true;
  auto prev = svc::overload_actions(svc::OverloadTier::kNominal);
  ok = ok && !prev.force_eliminate && !prev.degrade_to_partial &&
       !prev.shed_tenants && prev.batch_divisor == 1;
  for (int t = 1; t < static_cast<int>(svc::kNumOverloadTiers); ++t) {
    const auto cur =
        svc::overload_actions(static_cast<svc::OverloadTier>(t));
    ok = ok && (cur.force_eliminate || !prev.force_eliminate) &&
         (cur.degrade_to_partial || !prev.degrade_to_partial) &&
         (cur.shed_tenants || !prev.shed_tenants) &&
         cur.batch_divisor >= prev.batch_divisor;
    prev = cur;
  }
  ok = ok && prev.force_eliminate && prev.degrade_to_partial &&
       prev.shed_tenants && prev.batch_divisor == svc::kOverloadBatchDivisor;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  const auto specs = sim::multicore_sweep_specs();

  bench::check("overload_actions_monotone", actions_monotone(), opts);

  bench::section("Table E: OverloadManager tier ladder, live actuation");
  bool all_live_conserved = true;
  bool all_live_hysteresis = true;
  {
    util::Table table({"backend", "tier ladder", "quota grant",
                       "admit charge", "shed", "conserved"});
    for (const auto& spec : specs) {
      const auto r = run_live_cell(spec);
      all_live_conserved = all_live_conserved && r.conserved;
      all_live_hysteresis = all_live_hysteresis && r.ladder_ok;
      table.add_row(
          {svc::backend_spec_name(spec), r.ladder,
           util::fmt_int(static_cast<std::int64_t>(r.quota_granted)) + "/" +
               util::fmt_int(static_cast<std::int64_t>(kQuotaAsk)),
           util::fmt_int(static_cast<std::int64_t>(r.admit_charged)) + "/" +
               util::fmt_int(static_cast<std::int64_t>(kAdmitCost)),
           shed_cell(r.shed), r.conserved ? "yes" : "NO"});
      const std::string tag = "[" + svc::backend_spec_name(spec) + "]";
      bench::check("E:ladder" + tag, r.ladder_ok, opts);
      bench::check("E:degrade" + tag, r.degrade_ok, opts);
      bench::check("E:shed_restore" + tag, r.shed_ok, opts);
      bench::check("E:conservation" + tag, r.conserved, opts);
    }
    bench::emit(table, opts);
    bench::note(
        "\nthe scripted gauge walks pressure 0 -> 0.97 -> 0; every backend\n"
        "must ride the same hysteretic ladder 0-1-2-3-4-3-1-0, degrade to\n"
        "exact partial charges at tier 3, shed the two weight-1 tenants at\n"
        "tier 4, and drain back to its exact initial pools afterwards.",
        opts);
  }

  std::puts("");
  bench::section("Table E': overload control loop on simulated cores");
  {
    util::Table table({"backend", "makespan", "admit", "rej", "degr",
                       "shed-rej", "shed/rest", "refund", "peak>final",
                       "fswap", "ok"});
    bool all_conserved = true, all_hysteresis = true, all_recovered = true;
    const auto cfg = sim::overload_sim_reference_config();
    for (const auto& spec : specs) {
      const auto r = sim::simulate_overload(spec, cfg);
      all_conserved = all_conserved && r.conserved;
      all_hysteresis = all_hysteresis && r.hysteresis_respected;
      all_recovered = all_recovered && r.recovered;
      const bool ok = r.conserved && r.hysteresis_respected && r.recovered;
      table.add_row(
          {svc::backend_spec_name(spec), util::fmt_double(r.makespan, 2),
           util::fmt_int(static_cast<std::int64_t>(r.admitted)),
           util::fmt_int(static_cast<std::int64_t>(r.rejected)),
           util::fmt_int(static_cast<std::int64_t>(r.degraded_admits)),
           util::fmt_int(static_cast<std::int64_t>(r.shed_rejects)),
           util::fmt_int(static_cast<std::int64_t>(r.shed_events)) + "/" +
               util::fmt_int(static_cast<std::int64_t>(r.restore_events)),
           util::fmt_int(static_cast<std::int64_t>(r.shed_refunded_tokens)),
           std::to_string(static_cast<int>(r.peak_tier)) + ">" +
               std::to_string(static_cast<int>(r.final_tier)),
           r.forced_switch ? util::fmt_double(r.forced_switch_time, 1) : "-",
           ok ? "yes" : "NO"});
    }
    bench::emit(table, opts);
    bench::note(
        "\n48 staggered cores ramp an 8-tenant quota workload past the\n"
        "oversubscribed parent and back down; the sampler plays the same\n"
        "policy rules the live manager runs. Deterministic from the fixed\n"
        "seed — the transition instants are pinned golden in\n"
        "test_multicore_sim.",
        opts);
    bench::check("overload_sim_conservation", all_conserved, opts);
    bench::check("overload_sim_recovered", all_recovered, opts);
    bench::check("overload_recovery_hysteresis",
                 all_live_hysteresis && all_hysteresis, opts);
    bench::check("overload_shed_conservation", all_live_conserved, opts);

    // The headline cell must ride the whole ladder: the central word under
    // 48 staggered cores reaches the shed tier, produces genuinely short
    // grants under degrade, and force-refunds held parts when shedding.
    const svc::BackendSpec headline{svc::BackendKind::kCentralAtomic, false};
    const auto first = sim::simulate_overload(headline, cfg);
    bench::check("overload_sim_full_ladder",
                 first.peak_tier == svc::OverloadTier::kShedTenants &&
                     first.degraded_admits > 0 &&
                     first.shed_refunded_tokens > 0 &&
                     first.shed_events > 0 &&
                     first.shed_events == first.restore_events,
                 opts);

    // Determinism: a re-run must reproduce the trace bit-identically,
    // transition instants and per-tenant shed counts included.
    const auto again = sim::simulate_overload(headline, cfg);
    bool identical =
        first.makespan == again.makespan &&
        first.attempts == again.attempts &&
        first.admitted == again.admitted &&
        first.rejected == again.rejected &&
        first.degraded_admits == again.degraded_admits &&
        first.shed_rejects == again.shed_rejects &&
        first.shed_refunded_tokens == again.shed_refunded_tokens &&
        first.shed_rejects_per_tenant == again.shed_rejects_per_tenant &&
        first.transitions.size() == again.transitions.size();
    if (identical) {
      for (std::size_t i = 0; i < first.transitions.size(); ++i) {
        identical = identical &&
                    first.transitions[i].time == again.transitions[i].time &&
                    first.transitions[i].from == again.transitions[i].from &&
                    first.transitions[i].to == again.transitions[i].to &&
                    first.transitions[i].pressure ==
                        again.transitions[i].pressure;
      }
    }
    bench::check("overload_sim_determinism", identical, opts);
  }

  return bench::finish(opts);
}
