// Fig. 3 + §1.3.2 (structural interpretation): the three-block anatomy of
// C(w,t) and where contention lives.
//
// Table 1: block census (layers and balancers of N_a / N_b / N_c) across
//          (w, t) — the structure Fig. 3 depicts for C(8,16).
// Table 2: simulated stalls per token charged to each block as t grows,
//          with w and n fixed — demonstrating the paper's claim that
//          raising t drains the contention out of N_c while N_a's share
//          stays put (and is small, since depth(N_a) = lgw - 1).
#include <iostream>
#include <string>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/sim/contention.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

std::vector<std::string> block_labels(const topo::Topology& net,
                                      std::size_t w) {
  const std::size_t lgw = util::ilog2(w);
  std::vector<std::string> labels;
  for (std::size_t layer = 1; layer <= net.depth(); ++layer) {
    if (layer < lgw) {
      labels.emplace_back("Na");
    } else if (layer == lgw) {
      labels.emplace_back("Nb");
    } else {
      labels.emplace_back("Nc");
    }
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("Fig. 3: block decomposition of C(w,t) into Na / Nb / Nc");
  {
    util::Table table({"network", "layers Na", "layers Nb", "layers Nc",
                       "balancers Na", "balancers Nb", "balancers Nc"});
    for (const std::size_t w : {4u, 8u, 16u, 32u}) {
      for (const std::size_t p : {1u, 2u, 4u}) {
        const std::size_t t = p * w;
        const auto net = core::make_counting(w, t);
        const auto census = core::block_census(net, w);
        table.add_row(
            {"C(" + std::to_string(w) + "," + std::to_string(t) + ")",
             util::fmt_int(static_cast<std::int64_t>(census.layers_na)),
             util::fmt_int(static_cast<std::int64_t>(census.layers_nb)),
             util::fmt_int(static_cast<std::int64_t>(census.layers_nc)),
             util::fmt_int(static_cast<std::int64_t>(census.balancers_na)),
             util::fmt_int(static_cast<std::int64_t>(census.balancers_nb)),
             util::fmt_int(static_cast<std::int64_t>(census.balancers_nc))});
      }
    }
    bench::emit(table, opts);
  }

  std::puts("");
  std::puts("============================================================");
  std::puts(" §1.3.2: per-block stalls/token vs t  (w=16, n=256,");
  std::puts("         wavefront-convoy adversary)");
  std::puts("============================================================");
  {
    const std::size_t w = 16;
    const std::size_t n = 256;
    util::Table table({"network", "total", "Na", "Nb", "Nc",
                       "Nc share"});
    for (const std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const std::size_t t = p * w;
      const auto net = core::make_counting(w, t);
      sim::ContentionConfig cfg;
      cfg.concurrency = n;
      cfg.generations = 24;
      const auto report = sim::measure_contention(net, cfg);
      const auto labels = block_labels(net, w);
      const auto groups = sim::group_stalls(report.per_layer, labels);
      double na = 0, nb = 0, nc = 0;
      for (const auto& g : groups) {
        if (g.group == "Na") na = g.stalls_per_token;
        if (g.group == "Nb") nb = g.stalls_per_token;
        if (g.group == "Nc") nc = g.stalls_per_token;
      }
      table.add_row(
          {"C(" + std::to_string(w) + "," + std::to_string(t) + ")",
           util::fmt_double(report.stalls_per_token, 2),
           util::fmt_double(na, 2), util::fmt_double(nb, 2),
           util::fmt_double(nc, 2),
           util::fmt_ratio(nc, report.stalls_per_token, 2)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: Nc dominates at t=w and collapses as t grows;\n"
        "Na/Nb stay roughly constant (paper §1.3.2).", opts);
  }
  return cnet::bench::finish(opts);
}
