// Regenerates the paper's structural figures:
//   Fig. 1  — the (4,6)-balancer worked example and C(4,8) with the exact
//             token distribution and counter values shown in the figure;
//   Fig. 2  — the regular networks C(4,4), C(8,8);
//   Figs. 5/6 — the merging networks M(t,2), M(8,4), M(16,4);
//   Figs. 10–13 — the recursive constructions C(4,4), C(4,8), C(8,8),
//             C(8,16);
//   Fig. 14 — the butterflies D(8), E(8).
// For each network we print the census the figure depicts and write a
// Graphviz .dot file next to the binary (cnet_fig_*.dot).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/seq/sequence.hpp"
#include "cnet/sim/schedulers.hpp"
#include "cnet/sim/token_sim.hpp"
#include "cnet/topology/dot.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

void dump(const char* figure, const char* name, const topo::Topology& net,
          util::Table& table) {
  table.add_row({figure, name, util::fmt_int(static_cast<std::int64_t>(net.width_in())),
                 util::fmt_int(static_cast<std::int64_t>(net.width_out())),
                 util::fmt_int(static_cast<std::int64_t>(net.depth())),
                 util::fmt_int(static_cast<std::int64_t>(net.num_balancers())),
                 net.is_regular() ? "yes" : "no"});
  std::ofstream out(std::string("cnet_fig_") + name + ".dot");
  out << topo::to_dot(net, name);
}

void figure1_worked_example() {
  std::puts("== Fig. 1 worked example ==");
  // Left half: a (4,6)-balancer with input x = (3,1,2,4).
  topo::Builder b;
  const auto in = b.add_network_inputs(4);
  b.set_outputs(b.add_balancer(in, 6));
  const auto balancer = std::move(b).build();
  const seq::Sequence x = {3, 1, 2, 4};
  const auto y = topo::evaluate(balancer, x);
  std::printf("(4,6)-balancer  input x = 3,1,2,4   output y =");
  for (const auto v : y) std::printf(" %lld", static_cast<long long>(v));
  std::printf("   (paper: 2,2,2,2,1,1)\n");

  // Right half: C(4,8) with the same 10 tokens; counter values 0..9 must be
  // assigned across the 8 output cells.
  const auto net = core::make_counting(4, 8);
  sim::SimConfig cfg{.concurrency = 4, .total_tokens = 10};
  sim::RoundRobinScheduler sched;
  const auto res = sim::simulate(net, cfg, sched);
  std::printf("C(4,8) with 10 tokens: output counts =");
  for (const auto v : res.output_counts) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\ncounter values handed out:");
  auto values = res.counter_values;
  std::sort(values.begin(), values.end());
  for (const auto v : values) std::printf(" %lld", static_cast<long long>(v));
  std::printf("   (paper: 0..9)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("Figures 1-3, 5-6, 10-14: network structure census");
  figure1_worked_example();

  util::Table table({"figure", "network", "w", "t", "depth", "balancers",
                     "regular"});
  dump("Fig.1", "C_4_8", core::make_counting(4, 8), table);
  dump("Fig.2", "C_4_4", core::make_counting(4, 4), table);
  dump("Fig.2", "C_8_8", core::make_counting(8, 8), table);
  dump("Fig.3", "C_8_16", core::make_counting(8, 16), table);
  dump("Fig.5", "M_8_2", core::make_merging(8, 2), table);
  dump("Fig.6", "M_8_4", core::make_merging(8, 4), table);
  dump("Fig.6", "M_16_4", core::make_merging(16, 4), table);
  dump("Fig.11", "C_4_8b", core::make_counting(4, 8), table);
  dump("Fig.12", "C_8_8b", core::make_counting(8, 8), table);
  dump("Fig.13", "C_8_16b", core::make_counting(8, 16), table);
  dump("Fig.14", "D_8", core::make_forward_butterfly(8), table);
  dump("Fig.14", "E_8", core::make_backward_butterfly(8), table);
  bench::emit(table, opts);
  std::puts("\n(.dot files written next to the binary; render with graphviz)");
  return cnet::bench::finish(opts);
}
