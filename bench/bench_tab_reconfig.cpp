// Hot reconfiguration, live and in virtual time — the staged-commit
// engine ISSUE 7 builds under the service layer (svc::ReconfigEngine).
//
// Table F — NetTokenBucket::respec under real threads: consume/refill
//           workers race a reconfigurer cycling the pool through every
//           backend spec mid-traffic. Conservation must be exact at
//           quiescence — every token the workers pushed in was either
//           handed out or is still drainable, across every commit's
//           migration — and never-over-admit must hold throughout.
// Table F2 — QuotaHierarchy::reweigh with a grant in flight: the limit
//           vector re-divides live, the outstanding borrow above the
//           shrunken limit is overage (never clawed back), the sibling's
//           grown limit binds immediately, and release stays the exact
//           undo recorded in the grant.
// Table F′ — sim::simulate_reconfig: the same staged publish / quiescent
//           commit protocol in virtual time, where the commit instant —
//           the exact moment the last in-flight old-stack op drains — is
//           deterministic on any host (pinned golden in
//           test_multicore_sim).
//
// Named checks (--json + exit code, the artifact CI gates on):
//   F:conservation[spec] — the mid-traffic respec sweep starting from
//       `spec` conserved tokens exactly and committed at least once;
//   F:reweigh[spec]      — live re-division over a `spec` parent kept the
//       in-flight grant release-exact and the parent pool drained to its
//       initial count;
//   reconfig_batch_divisor_end_to_end — under overload tier >= 1 a respec
//       bakes the divided chunk into the published configuration and the
//       backend's own batch_pass_count proves the smaller holds actually
//       traversed the network (the tentpole's motivating bug);
//   reconfig_sim_conservation — the model mirror conserves across the
//       commit for every backend spec, version bumped, retired pool empty;
//   reconfig_sim_determinism  — a re-run of the headline cell reproduces
//       the trace bit-identically, commit instant included.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cnet/sim/multicore.hpp"
#include "cnet/svc/backend.hpp"
#include "cnet/svc/net_token_bucket.hpp"
#include "cnet/svc/overload.hpp"
#include "cnet/svc/policy.hpp"
#include "cnet/svc/quota.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

struct LiveCellResult {
  std::uint64_t refilled = 0;
  std::uint64_t consumed = 0;
  std::uint64_t drained = 0;
  std::uint64_t respecs = 0;  // committed config versions past the first
  bool conserved = false;
};

// One Table F cell: 3 consume/refill workers against a bucket that starts
// on `spec`, while a reconfigurer thread cycles it through the whole sweep
// axis with varying chunks. One deterministic final respec after the
// workers drain guarantees at least one commit even in the tiniest smoke
// run (and exercises the idle-respec degenerate case).
LiveCellResult run_live_cell(const svc::BackendSpec& spec,
                             std::uint64_t rounds) {
  constexpr std::size_t kWorkers = 3;
  svc::NetTokenBucket bucket(
      make_counter(spec),
      svc::NetTokenBucket::Config{/*initial_tokens=*/0, /*refill_chunk=*/64});
  const auto specs = sim::multicore_sweep_specs();

  LiveCellResult res;
  // Commit-count via the subscribe push (SDS-style watch) instead of the
  // old config_version() poll: every commit fires the callback exactly
  // once, on the committing thread, so the counter needs no final read.
  std::atomic<std::uint64_t> commits{0};
  bucket.subscribe([&commits](std::uint64_t) {
    commits.fetch_add(1, std::memory_order_relaxed);
  });
  std::atomic<std::uint64_t> consumed{0}, refilled{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < rounds; ++i) {
        bucket.refill(w, 3);
        refilled.fetch_add(3, std::memory_order_relaxed);
        consumed.fetch_add(bucket.consume(w, 2, svc::kPartialOk),
                           std::memory_order_relaxed);
        consumed.fetch_add(bucket.consume(w, 5, svc::kAllOrNothing),
                           std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      bucket.respec(kWorkers, {specs[i % specs.size()], svc::BackendConfig{},
                               1 + (i * 37) % 256});
      ++i;
    }
  });
  for (std::size_t w = 0; w < kWorkers; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();
  bucket.respec(0, {spec, svc::BackendConfig{}, 64});  // guaranteed commit

  std::uint64_t got = 0;
  while ((got = bucket.consume(0, 64, svc::kPartialOk)) != 0) {
    res.drained += got;
  }
  res.refilled = refilled.load();
  res.consumed = consumed.load();
  res.respecs = commits.load(std::memory_order_acquire);
  res.conserved = res.refilled == res.consumed + res.drained &&
                  res.refilled >= res.consumed && res.respecs >= 1;
  return res;
}

struct ReweighCellResult {
  std::uint64_t limit_before = 0;
  std::uint64_t limit_after = 0;
  std::uint64_t overage = 0;
  std::uint64_t parent_drained = 0;
  bool ok = false;
};

// One Table F2 cell: tenant 0 borrows 40 of its 50-limit from a parent on
// `spec`, the weights re-divide live to {1, 9}, and the whole in-flight /
// overage / sibling / release-exact story must hold under the new
// generation, ending in an exact parent drain.
ReweighCellResult run_reweigh_cell(const svc::BackendSpec& spec) {
  svc::QuotaHierarchy::Config cfg;
  cfg.parent = spec;
  cfg.parent_initial_tokens = 100;
  cfg.borrow_budget = 100;
  svc::QuotaHierarchy quota(cfg, {{.initial_tokens = 0, .weight = 1},
                                  {.initial_tokens = 0, .weight = 1}});

  ReweighCellResult res;
  // The reweigh commit arrives by push: the subscribe callback hands us the
  // committed version on the committing thread (here, synchronously inside
  // reweigh), replacing the config_version() == 2 poll.
  std::uint64_t committed_version = 0;
  quota.subscribe(
      [&committed_version](std::uint64_t v) { committed_version = v; });
  res.limit_before = quota.borrow_limit(0);
  const auto held = quota.acquire(0, 0, 40);
  bool ok = held.admitted && held.from_parent == 40 &&
            quota.borrowed(0) == 40 && res.limit_before == 50;

  quota.reweigh(0, {1, 9});
  res.limit_after = quota.borrow_limit(0);
  res.overage = svc::borrow_overage(quota.borrowed(0), res.limit_after);
  ok = ok && committed_version == 2 && res.limit_after == 10 &&
       quota.borrowed(0) == 40 &&  // overage, never clawed back
       res.overage == 30 &&
       !quota.acquire(0, 0, 1).admitted;  // no allowance until it drains

  const auto sibling = quota.acquire(0, 1, 60);  // the grown limit binds now
  ok = ok && sibling.admitted && sibling.from_parent == 60;

  quota.release(0, held);  // the exact undo, under the new generation
  ok = ok && quota.borrowed(0) == 0;
  const auto after = quota.acquire(0, 0, 10);
  ok = ok && after.admitted;  // back inside the shrunken limit
  if (after.admitted) quota.release(0, after);
  if (sibling.admitted) quota.release(0, sibling);

  std::uint64_t got = 0;
  while ((got = quota.parent().consume(0, 64, svc::kPartialOk)) != 0) {
    res.parent_drained += got;
  }
  res.ok = ok && quota.borrowed(1) == 0 && res.parent_drained == 100;
  return res;
}

// The tentpole's motivating bug, end to end: tier 1's batch_divisor used
// to stop at per-call chunk arithmetic; a respec under overload bakes the
// divided chunk into the published configuration, and the backend's own
// batch_pass_count proves the smaller exclusive holds actually traversed.
bool batch_divisor_end_to_end() {
  svc::NetTokenBucket bucket(
      make_counter(svc::BackendSpec{svc::BackendKind::kBatchedNetwork, false}),
      svc::NetTokenBucket::Config{0, 64});
  svc::OverloadManager mgr;
  auto gauge = std::make_unique<svc::GaugeMonitor>("script", 100);
  svc::GaugeMonitor* script = gauge.get();
  mgr.add_monitor(std::move(gauge));
  bucket.attach_overload(&mgr);

  bucket.refill(0, 128);  // nominal: 2 passes of 64
  bool ok = bucket.batch_pass_count() == 2;

  script->set(55);  // tier 1
  ok = ok && mgr.evaluate() != svc::OverloadTier::kNominal;
  const std::size_t divisor = mgr.actions().batch_divisor;
  ok = ok && divisor > 1;

  bucket.respec(0,
                {{svc::BackendKind::kBatchedNetwork, false}, {}, 64});
  const std::uint64_t passes_before = bucket.batch_pass_count();
  const std::uint64_t traversals_before = bucket.traversal_count();
  bucket.refill(0, 128);
  const std::uint64_t passes = bucket.batch_pass_count() - passes_before;
  const std::uint64_t traversals =
      bucket.traversal_count() - traversals_before;
  const std::size_t chunk = svc::divided_chunk(64, divisor);
  ok = ok && traversals == 128 && passes == 128 / chunk &&
       traversals / passes == chunk;

  std::uint64_t drained = 0, got = 0;
  while ((got = bucket.consume(0, 64, svc::kPartialOk)) != 0) drained += got;
  return ok && drained == 256;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  const auto specs = sim::multicore_sweep_specs();
  const std::uint64_t rounds = opts.smoke ? 200 : 4000;

  bench::check("reconfig_batch_divisor_end_to_end", batch_divisor_end_to_end(),
               opts);

  bench::section("Table F: live mid-traffic respec, exact conservation");
  {
    util::Table table({"backend", "respecs", "refilled", "consumed",
                       "drained", "conserved"});
    for (const auto& spec : specs) {
      const auto r = run_live_cell(spec, rounds);
      table.add_row(
          {svc::backend_spec_name(spec),
           util::fmt_int(static_cast<std::int64_t>(r.respecs)),
           util::fmt_int(static_cast<std::int64_t>(r.refilled)),
           util::fmt_int(static_cast<std::int64_t>(r.consumed)),
           util::fmt_int(static_cast<std::int64_t>(r.drained)),
           r.conserved ? "yes" : "NO"});
      bench::check("F:conservation[" + svc::backend_spec_name(spec) + "]",
                   r.conserved, opts);
    }
    bench::emit(table, opts);
    bench::note(
        "\n3 consume/refill workers race a reconfigurer cycling the pool\n"
        "through every backend spec; every commit migrates the remaining\n"
        "count exactly, so refilled == consumed + drained at quiescence\n"
        "and no consume was ever over-admitted.",
        opts);
  }

  std::puts("");
  bench::section("Table F2: live weight re-division with a grant in flight");
  {
    util::Table table({"parent backend", "limit 0", "overage",
                       "parent drain", "ok"});
    for (const auto& spec : specs) {
      const auto r = run_reweigh_cell(spec);
      table.add_row(
          {svc::backend_spec_name(spec),
           util::fmt_int(static_cast<std::int64_t>(r.limit_before)) + "->" +
               util::fmt_int(static_cast<std::int64_t>(r.limit_after)),
           util::fmt_int(static_cast<std::int64_t>(r.overage)),
           util::fmt_int(static_cast<std::int64_t>(r.parent_drained)) +
               "/100",
           r.ok ? "yes" : "NO"});
      bench::check("F:reweigh[" + svc::backend_spec_name(spec) + "]", r.ok,
                   opts);
    }
    bench::emit(table, opts);
    bench::note(
        "\nweights {1,1} -> {1,9} while tenant 0 holds 40 of its old\n"
        "50-limit: the 30 above the new limit is overage (kept, not\n"
        "clawed back), the sibling's 90-limit binds immediately, and the\n"
        "release is the exact undo recorded in the grant.",
        opts);
  }

  std::puts("");
  bench::section("Table F': staged commit protocol on simulated cores");
  {
    util::Table table({"backend", "target", "staged", "commit", "migrated",
                       "chunk", "ver", "conserved"});
    bool all_conserved = true;
    for (const auto& spec : specs) {
      sim::ReconfigSimConfig cfg = sim::reconfig_sim_reference_config();
      cfg.spec_to = sim::reconfig_respec_target(spec);
      const auto r = sim::simulate_reconfig(spec, cfg);
      all_conserved = all_conserved && r.conserved &&
                      r.config_version == 2 && r.migrated_tokens > 0;
      table.add_row(
          {svc::backend_spec_name(spec), svc::backend_spec_name(cfg.spec_to),
           util::fmt_double(r.respec_staged_time, 1),
           util::fmt_double(r.respec_commit_time, 2),
           util::fmt_int(static_cast<std::int64_t>(r.migrated_tokens)),
           util::fmt_int(static_cast<std::int64_t>(r.staged_chunk)),
           util::fmt_int(static_cast<std::int64_t>(r.config_version)),
           r.conserved ? "yes" : "NO"});
    }
    bench::emit(table, opts);
    bench::note(
        "\nthe stage publishes at t=300 and the commit fires at the exact\n"
        "instant the last in-flight old-stack op drains — deterministic\n"
        "from the seed; the commit instants are pinned golden in\n"
        "test_multicore_sim.",
        opts);
    bench::check("reconfig_sim_conservation", all_conserved, opts);

    const svc::BackendSpec headline{svc::BackendKind::kBatchedNetwork, false};
    sim::ReconfigSimConfig cfg = sim::reconfig_sim_reference_config();
    cfg.spec_to = sim::reconfig_respec_target(headline);
    const auto first = sim::simulate_reconfig(headline, cfg);
    const auto again = sim::simulate_reconfig(headline, cfg);
    const bool identical =
        first.makespan == again.makespan &&
        first.consumed == again.consumed &&
        first.rejected == again.rejected &&
        first.refilled == again.refilled &&
        first.respec_staged_time == again.respec_staged_time &&
        first.respec_commit_time == again.respec_commit_time &&
        first.migrated_tokens == again.migrated_tokens &&
        first.old_stalls == again.old_stalls &&
        first.new_stalls == again.new_stalls &&
        first.final_pool == again.final_pool;
    bench::check("reconfig_sim_determinism", identical, opts);
  }

  return bench::finish(opts);
}
