// Experimental analysis (paper §1.3.1's reference to [19,20]): sustained
// Fetch&Increment throughput of every counter implementation under real
// threads, plus the observed CAS-stall census for the cas-retry discipline.
//
// NOTE: the paper's cited experiments ran on 10 UltraSparc workstations;
// this harness runs wherever you build it. On a single-core host the
// wall-clock ordering is dominated by path length (central counter first,
// deeper networks slower) — the contention separation that favours
// C(w, w·lgw) at high concurrency is reproduced in bench_tab_contention's
// adversarial simulation, which is the measure the theorems speak about.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/difftree_rt.hpp"
#include "cnet/runtime/network_counter.hpp"

namespace {

using namespace cnet;

// Counters live for the whole benchmark run; each registered benchmark
// hammers one of them.
std::vector<std::unique_ptr<rt::Counter>>& registry() {
  static std::vector<std::unique_ptr<rt::Counter>> counters;
  return counters;
}

void counter_loop(benchmark::State& state, rt::Counter* counter) {
  const auto hint = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter->fetch_increment(hint));
  }
  state.counters["stalls"] = benchmark::Counter(
      static_cast<double>(counter->stall_count()),
      benchmark::Counter::kDefaults);
  state.SetItemsProcessed(state.iterations());
}

void register_counter(std::unique_ptr<rt::Counter> counter) {
  rt::Counter* raw = counter.get();
  registry().push_back(std::move(counter));
  auto* bench = benchmark::RegisterBenchmark(
      ("fetch_increment/" + raw->name()).c_str(),
      [raw](benchmark::State& state) { counter_loop(state, raw); });
  bench->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  register_counter(std::make_unique<rt::AtomicCounter>());
  register_counter(std::make_unique<rt::CasCounter>());
  register_counter(std::make_unique<rt::MutexCounter>());
  register_counter(std::make_unique<rt::NetworkCounter>(
      baselines::make_bitonic(8), "bitonic(8)"));
  register_counter(std::make_unique<rt::NetworkCounter>(
      baselines::make_periodic(8), "periodic(8)"));
  register_counter(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 8), "C(8,8)"));
  register_counter(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 24), "C(8,24)"));
  register_counter(std::make_unique<rt::NetworkCounter>(
      core::make_counting(8, 24), "C(8,24)/cas", rt::BalancerMode::kCasRetry));
  register_counter(std::make_unique<rt::NetworkCounter>(
      baselines::make_bitonic(8), "bitonic(8)/cas",
      rt::BalancerMode::kCasRetry));
  {
    rt::DiffractingTreeCounter::Config cfg;
    cfg.leaves = 8;
    cfg.partner_spins = 4;  // collisions are rare on few-core hosts
    register_counter(std::make_unique<rt::DiffractingTreeCounter>(cfg));
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
