// Experimental analysis (paper §1.3.1's reference to [19,20]): sustained
// Fetch&Increment throughput of every counter implementation under real
// threads via the unified LoadGen harness, plus the batched-token runtime
// (BatchedNetworkCounter::fetch_increment_batch) against the per-token
// baseline — the batching lever that cuts per-value atomic traffic by up
// to k×.
//
// NOTE: the paper's cited experiments ran on 10 UltraSparc workstations;
// this harness runs wherever you build it. On a few-core host the
// wall-clock ordering is dominated by path length (central counter first,
// deeper networks slower) — the contention separation that favours
// C(w, w·lgw) at high concurrency is reproduced in bench_tab_contention's
// adversarial simulation, which is the measure the theorems speak about.
// Batching wins regardless of core count because it removes atomic RMWs
// per token outright.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/difftree_rt.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/util/table.hpp"
#include "support/loadgen.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

bench::LoadGenConfig config_for(std::size_t threads) {
  bench::LoadGenConfig cfg;
  cfg.threads = threads;
  cfg.warmup_seconds = 0.1;
  cfg.measure_seconds = 0.3;
  return cfg;
}

// Per-token load: one fetch_increment per op-call.
bench::LoadGenResult hammer(rt::Counter& counter, std::size_t threads) {
  return bench::run_loadgen(config_for(threads), [&](std::size_t t) {
    volatile std::int64_t sink = counter.fetch_increment(t);
    (void)sink;
    return std::uint64_t{1};
  });
}

// Batched load: one fetch_increment_batch(k) per op-call, counted as k ops.
bench::LoadGenResult hammer_batch(rt::Counter& counter, std::size_t threads,
                                  std::size_t k) {
  std::vector<std::vector<std::int64_t>> buffers(
      threads, std::vector<std::int64_t>(k));
  return bench::run_loadgen(config_for(threads), [&, k](std::size_t t) {
    counter.fetch_increment_batch(t, k, buffers[t].data());
    volatile std::int64_t sink = buffers[t][k - 1];
    (void)sink;
    return static_cast<std::uint64_t>(k);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  struct Backend {
    std::string label;
    std::unique_ptr<rt::Counter> counter;
  };
  std::vector<Backend> backends;
  backends.push_back({"central-atomic", std::make_unique<rt::AtomicCounter>()});
  backends.push_back({"central-cas", std::make_unique<rt::CasCounter>()});
  backends.push_back({"central-mutex", std::make_unique<rt::MutexCounter>()});
  backends.push_back({"bitonic(8)", std::make_unique<rt::NetworkCounter>(
                                        baselines::make_bitonic(8),
                                        "bitonic(8)")});
  backends.push_back({"periodic(8)", std::make_unique<rt::NetworkCounter>(
                                         baselines::make_periodic(8),
                                         "periodic(8)")});
  backends.push_back({"C(8,8)", std::make_unique<rt::NetworkCounter>(
                                    core::make_counting(8, 8), "C(8,8)")});
  backends.push_back({"C(8,24)", std::make_unique<rt::NetworkCounter>(
                                     core::make_counting(8, 24), "C(8,24)")});
  backends.push_back(
      {"C(8,24)/cas", std::make_unique<rt::NetworkCounter>(
                          core::make_counting(8, 24), "C(8,24)/cas",
                          rt::BalancerMode::kCasRetry)});
  {
    rt::DiffractingTreeCounter::Config cfg;
    cfg.leaves = 8;
    cfg.partner_spins = 4;  // collisions are rare on few-core hosts
    backends.push_back(
        {"difftree(8)", std::make_unique<rt::DiffractingTreeCounter>(cfg)});
  }

  bench::section("Fetch&Increment throughput vs threads (per-token)");
  {
    util::Table table({"backend", "n=1", "n=2", "n=4", "n=8", "p50", "p99",
                       "stalls"});
    for (auto& backend : backends) {
      std::vector<std::string> row = {backend.label};
      bench::LoadGenResult last;
      for (const std::size_t n : kThreadCounts) {
        last = hammer(*backend.counter, n);
        row.push_back(bench::fmt_rate(last.ops_per_sec));
      }
      row.push_back(bench::fmt_ns(last.p50_ns));
      row.push_back(bench::fmt_ns(last.p99_ns));
      row.push_back(util::fmt_int(
          static_cast<std::int64_t>(backend.counter->stall_count())));
      table.add_row(row);
    }
    bench::emit(table, opts);
    bench::note(
        "\nrates are tokens/sec over a 0.3s measured phase after 0.1s\n"
        "warmup; p50/p99 are per-op latencies at n=8; stalls are CAS\n"
        "retries accumulated across the whole run (cas backends only).",
        opts);
  }

  // The tentpole comparison: the same C(w, w·lgw) network traversed
  // per-token vs in k-token batches. One fetch_add(k) per balancer and one
  // cell RMW per exit wire replace k·depth(+1) RMWs.
  std::printf("\n");
  bench::section("Batched tokens on C(8,24): k-token batches vs per-token");
  double per_token_at8 = 0.0, batched_at8 = 0.0;
  {
    const auto net = core::make_counting(8, 24);
    util::Table table({"mode", "n=1", "n=2", "n=4", "n=8", "p50(call)",
                       "vs per-token @n=8"});
    std::vector<double> per_token_rates;
    {
      rt::NetworkCounter counter(net, "C(8,24)");
      std::vector<std::string> row = {"per-token"};
      bench::LoadGenResult last;
      for (const std::size_t n : kThreadCounts) {
        last = hammer(counter, n);
        per_token_rates.push_back(last.ops_per_sec);
        row.push_back(bench::fmt_rate(last.ops_per_sec));
      }
      per_token_at8 = per_token_rates.back();
      row.push_back(bench::fmt_ns(last.p50_ns));
      row.push_back("1.00x");
      table.add_row(row);
    }
    for (const std::size_t k : {8u, 64u}) {
      rt::BatchedNetworkCounter counter(net, "batched C(8,24)");
      std::vector<std::string> row = {"batch k=" + std::to_string(k)};
      bench::LoadGenResult last;
      for (const std::size_t n : kThreadCounts) {
        last = hammer_batch(counter, n, k);
        row.push_back(bench::fmt_rate(last.ops_per_sec));
      }
      if (k == 64) batched_at8 = last.ops_per_sec;
      row.push_back(bench::fmt_ns(last.p50_ns));
      row.push_back(util::fmt_double(last.ops_per_sec / per_token_at8, 2) +
                    "x");
      table.add_row(row);
    }
    bench::emit(table, opts);
  }
  std::printf("\nbatched (k=64) vs per-token at n=8 threads: %.2fx %s\n",
              batched_at8 / per_token_at8,
              batched_at8 >= 2.0 * per_token_at8 ? "(>= 2x target met)"
                                                 : "(below 2x target)");
  bench::check("batched >= 2x per-token at n=8",
               batched_at8 >= 2.0 * per_token_at8, opts);
  return bench::finish(opts);
}
