// Shared console-report scaffolding for the bench drivers: section banners,
// table passthrough, a tiny common argument convention (--csv switches
// every table to CSV, --smoke shrinks runs for CI), and an optional
// machine-readable JSON sink (--json FILE) that captures every emitted
// table plus named pass/fail invariant checks — the artifact CI uploads
// and gates on.
#pragma once

#include <iostream>
#include <string>

#include "cnet/util/table.hpp"

namespace cnet::bench {

// Parses the arguments shared by every driver. `--help` prints usage and
// exits 0; an unrecognized `-`-prefixed flag prints usage and exits 2 (the
// drivers take no other flags).
struct ReportOptions {
  bool csv = false;
  // CI bit-rot guard: drivers with timed LoadGen phases shrink to tiny
  // iteration counts and thread sweeps (numbers become meaningless, but
  // every code path still runs); table-only drivers ignore it.
  bool smoke = false;
  // When non-empty, finish() writes a JSON report of every table emitted
  // and every check recorded to this path.
  std::string json_path;

  static ReportOptions parse(int argc, char** argv);
};

// RFC-8259 string escaping for the JSON sink: quotes, backslashes, the
// short control escapes (\b \t \n \f \r) and \u00XX for every other
// character below 0x20 — so a check or section name can never emit invalid
// JSON and silently corrupt the artifact CI gates on. Exposed for tests.
std::string json_escape(const std::string& s);

// "==== title ====" banner, width-matched to the tables.
void section(const std::string& title);

// Prints the table as aligned text, or CSV when --csv was given. Also
// captures the table (under the most recent section title) into the JSON
// report when --json is active.
void emit(const util::Table& table, const ReportOptions& opts,
          std::ostream& os = std::cout);

// Footnote paragraph under a table. Skipped in CSV mode, where only table
// rows and '='/'-' framed banners reach stdout, so row extraction stays a
// simple grep.
void note(const std::string& text, const ReportOptions& opts);

// Records a named invariant check (e.g. "conservation"). Failed checks make
// finish() return nonzero, so CI can gate on bench invariants without
// parsing output; they are also echoed to stderr immediately.
//
// Names are unique per run: the JSON sink renders checks as an object, so a
// repeated name would produce duplicate keys and a later passing reading
// could silently mask an earlier failure in whatever parses the artifact.
// A duplicate is therefore rejected loudly — the repeated reading is echoed
// to stderr but not recorded, and a synthetic failed check
// "duplicate_check_name[NAME]" is recorded in its place, so the run exits
// nonzero no matter what the shadowing reading said.
void check(const std::string& name, bool passed, const ReportOptions& opts);

// Clears the process-global report state (sections, captured tables,
// checks). Bench drivers never need this — it exists so test_report_json
// can run several independent report lifecycles in one process.
void reset_for_testing();

// Writes the JSON report when --json was given and returns the driver's
// exit code: 0 when every recorded check passed, 1 otherwise. Call as the
// last line of main().
int finish(const ReportOptions& opts);

}  // namespace cnet::bench
