// Shared console-report scaffolding for the bench drivers: section banners,
// table passthrough, and a tiny common argument convention (--csv switches
// every table to CSV), so all drivers speak one output dialect.
#pragma once

#include <iostream>
#include <string>

#include "cnet/util/table.hpp"

namespace cnet::bench {

// Parses the arguments shared by every driver. `--help` prints usage and
// exits 0; an unrecognized `-`-prefixed flag prints usage and exits 2 (the
// drivers take no other flags).
struct ReportOptions {
  bool csv = false;
  // CI bit-rot guard: drivers with timed LoadGen phases shrink to tiny
  // iteration counts and thread sweeps (numbers become meaningless, but
  // every code path still runs); table-only drivers ignore it.
  bool smoke = false;

  static ReportOptions parse(int argc, char** argv);
};

// "==== title ====" banner, width-matched to the tables.
void section(const std::string& title);

// Prints the table as aligned text, or CSV when --csv was given.
void emit(const util::Table& table, const ReportOptions& opts,
          std::ostream& os = std::cout);

// Footnote paragraph under a table. Skipped in CSV mode, where only table
// rows and '='/'-' framed banners reach stdout, so row extraction stays a
// simple grep.
void note(const std::string& text, const ReportOptions& opts);

}  // namespace cnet::bench
