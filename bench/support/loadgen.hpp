// The unified load-generation harness every thread-based bench and example
// is built on: a thread pool with stable per-thread hints, a warmup phase
// followed by a timed measurement phase, per-thread cache-line-padded
// tallies, and throughput + latency-percentile reporting via util::stats.
// Replaces the hand-rolled spawn/time loops the drivers used to carry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cnet::bench {

struct LoadGenConfig {
  std::size_t threads = 1;
  double warmup_seconds = 0.15;
  double measure_seconds = 0.75;
  // Minimum measured op-calls each thread must complete before it may
  // stop. On a loaded CI runner a smoke-sized measurement window can
  // elapse before a descheduled thread runs even once, leaving zero-op
  // results that divide to nonsense or pass invariant checks vacuously;
  // the floor makes every thread finish its quota after the window closes
  // instead. Throughput from a floor-extended run is an underestimate
  // (wall time includes the overrun) — smoke numbers are meaningless
  // anyway, which is the only place the floor should ever bind.
  std::uint64_t min_ops_per_thread = 1;
  // Record one latency sample every this many op-calls (0 disables latency
  // tracking; sampling keeps the probe overhead off the hot path).
  std::size_t latency_sample_every = 64;
  // Invoked on the coordinator thread immediately before the measured
  // phase opens — e.g. to snapshot a lifetime counter (stall tallies) so
  // warmup-phase accumulation can be subtracted out.
  std::function<void()> on_measure_begin;
};

struct LoadGenResult {
  std::size_t threads = 0;
  double seconds = 0.0;          // measured-phase wall time
  std::uint64_t total_ops = 0;   // logical operations in the measured phase
  double ops_per_sec = 0.0;
  std::uint64_t min_thread_ops = 0;  // fairness spread across threads
  std::uint64_t max_thread_ops = 0;
  bool has_latency = false;      // latency fields valid (sampling enabled)
  double p50_ns = 0.0;           // latency of one op-call, nanoseconds
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

// One unit of work for thread `thread_index` (a stable hint in
// [0, threads)); returns how many logical operations it completed — 1 for a
// single fetch_increment, k for a k-token batch.
using OpFn = std::function<std::uint64_t(std::size_t thread_index)>;

// Runs `op` on cfg.threads threads: all threads warm up together, then a
// timed phase is measured, then everyone stops. Only measured-phase ops
// count toward the result.
LoadGenResult run_loadgen(const LoadGenConfig& cfg, const OpFn& op);

// "12.3M/s"-style rate for table cells.
std::string fmt_rate(double ops_per_sec);
// "1.2us"-style duration for table cells.
std::string fmt_ns(double ns);

}  // namespace cnet::bench
