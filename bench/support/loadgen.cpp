#include "support/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cnet/util/cacheline.hpp"
#include "cnet/util/stats.hpp"

namespace cnet::bench {

namespace {

using Clock = std::chrono::steady_clock;

enum Phase : int { kWarmup = 0, kMeasure = 1, kStop = 2 };

struct alignas(util::kCacheLine) ThreadTally {
  std::uint64_t ops = 0;             // measured-phase logical ops
  std::vector<double> latencies_ns;  // sampled op-call latencies
};

}  // namespace

LoadGenResult run_loadgen(const LoadGenConfig& cfg, const OpFn& op) {
  const std::size_t threads = cfg.threads ? cfg.threads : 1;
  std::atomic<int> phase{kWarmup};
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> floor_extended{false};
  std::vector<ThreadTally> tallies(threads);

  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ThreadTally& tally = tallies[t];
        ready.fetch_add(1, std::memory_order_release);
        std::uint64_t calls = 0;
        std::uint64_t measured_calls = 0;
        bool measuring = false;
        for (;;) {
          const int p = phase.load(std::memory_order_acquire);
          if (p == kStop) break;
          if (p == kMeasure && !measuring) {
            // First sight of the measured phase: reset the tally so warmup
            // work never counts.
            measuring = true;
            tally.ops = 0;
            tally.latencies_ns.clear();
          }
          const bool sample = measuring && cfg.latency_sample_every != 0 &&
                              calls % cfg.latency_sample_every == 0;
          if (sample) {
            const auto begin = Clock::now();
            const std::uint64_t done = op(t);
            const auto end = Clock::now();
            tally.ops += done;
            tally.latencies_ns.push_back(
                std::chrono::duration<double, std::nano>(end - begin)
                    .count());
          } else {
            const std::uint64_t done = op(t);
            if (measuring) tally.ops += done;
          }
          ++calls;
          if (measuring) ++measured_calls;
        }
        // Minimum-iterations floor: on a loaded host the whole window can
        // pass while this thread is descheduled (it may never even see
        // kMeasure). Finish the quota after the window closes rather than
        // report a zero-op tally.
        if (measured_calls < cfg.min_ops_per_thread) {
          floor_extended.store(true, std::memory_order_relaxed);
          if (!measuring) {
            tally.ops = 0;
            tally.latencies_ns.clear();
          }
          while (measured_calls < cfg.min_ops_per_thread) {
            tally.ops += op(t);
            ++measured_calls;
          }
        }
      });
    }

    while (ready.load(std::memory_order_acquire) != threads) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.warmup_seconds));
    if (cfg.on_measure_begin) cfg.on_measure_begin();
    const auto measure_begin = Clock::now();
    phase.store(kMeasure, std::memory_order_release);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.measure_seconds));
    phase.store(kStop, std::memory_order_release);
    const auto measure_end = Clock::now();

    // jthreads join here; floor-extended work (if any) finishes inside.
    workers.clear();
    const auto join_end = Clock::now();

    LoadGenResult result;
    result.threads = threads;
    // When the floor extended the run, the wall clock must cover the
    // overrun — crediting post-window ops against the nominal window would
    // *inflate* the rate the floor exists to keep honest.
    result.seconds = std::chrono::duration<double>(
                         (floor_extended.load(std::memory_order_relaxed)
                              ? join_end
                              : measure_end) -
                         measure_begin)
                         .count();

    result.min_thread_ops = ~std::uint64_t{0};
    std::vector<double> all_latencies;
    for (const ThreadTally& tally : tallies) {
      result.total_ops += tally.ops;
      result.min_thread_ops = std::min(result.min_thread_ops, tally.ops);
      result.max_thread_ops = std::max(result.max_thread_ops, tally.ops);
      all_latencies.insert(all_latencies.end(), tally.latencies_ns.begin(),
                           tally.latencies_ns.end());
    }
    if (result.total_ops == 0) result.min_thread_ops = 0;
    result.ops_per_sec =
        result.seconds > 0 ? static_cast<double>(result.total_ops) /
                                 result.seconds
                           : 0.0;
    if (!all_latencies.empty()) {
      result.has_latency = true;
      result.p50_ns = util::percentile(all_latencies, 50.0);
      result.p99_ns = util::percentile(all_latencies, 99.0);
      util::Accumulator acc;
      for (const double v : all_latencies) acc.add(v);
      result.max_ns = acc.max();
    }
    return result;
  }
}

std::string fmt_rate(double ops_per_sec) {
  char buf[32];
  if (ops_per_sec >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG/s", ops_per_sec / 1e9);
  } else if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM/s", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk/s", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f/s", ops_per_sec);
  }
  return buf;
}

std::string fmt_ns(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

}  // namespace cnet::bench
