#include "support/report.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>
#include <vector>

namespace cnet::bench {

namespace {

// Accumulated state for the JSON sink. Bench drivers are single-threaded
// main() programs, so plain statics are fine here.
struct JsonState {
  std::string current_section;
  struct CapturedTable {
    std::string section;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<CapturedTable> tables;
  std::vector<std::pair<std::string, bool>> checks;
  std::set<std::string> check_names;
};

JsonState& json_state() {
  static JsonState state;
  return state;
}

void write_json(std::ostream& os) {
  const auto& state = json_state();
  os << "{\n  \"tables\": [";
  for (std::size_t t = 0; t < state.tables.size(); ++t) {
    const auto& table = state.tables[t];
    os << (t == 0 ? "\n" : ",\n");
    os << "    {\"section\": \"" << json_escape(table.section)
       << "\", \"rows\": [";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "      {";
      for (std::size_t c = 0; c < table.headers.size(); ++c) {
        if (c > 0) os << ", ";
        os << '"' << json_escape(table.headers[c]) << "\": \""
           << json_escape(table.rows[r][c]) << '"';
      }
      os << '}';
    }
    os << "\n    ]}";
  }
  os << "\n  ],\n  \"checks\": {";
  for (std::size_t i = 0; i < state.checks.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << json_escape(state.checks[i].first)
       << "\": " << (state.checks[i].second ? "true" : "false");
  }
  os << "\n  }\n}\n";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        // Remaining C0 controls get the \u00XX form; everything else
        // (including UTF-8 multibyte sequences) passes through untouched.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ReportOptions ReportOptions::parse(int argc, char** argv) {
  ReportOptions opts;
  const auto usage = [argv](std::FILE* out) {
    std::fprintf(out, "usage: %s [--csv] [--smoke] [--json FILE]\n", argv[0]);
  };
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--csv")) {
      opts.csv = true;
    } else if (!std::strcmp(argv[i], "--smoke")) {
      opts.smoke = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a file path\n");
        usage(stderr);
        std::exit(2);
      }
      opts.json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--help") ||
               !std::strcmp(argv[i], "-h")) {
      usage(stderr);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
  }
  return opts;
}

void section(const std::string& title) {
  json_state().current_section = title;
  const std::string bar(65, '=');
  std::printf("%s\n %s\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void emit(const util::Table& table, const ReportOptions& opts,
          std::ostream& os) {
  if (!opts.json_path.empty()) {
    json_state().tables.push_back({json_state().current_section,
                                   table.headers(), table.rows()});
  }
  // An empty table is never a valid result — it means a sweep produced no
  // rows (degenerate smoke window, broken config) and every named check
  // computed over it passed vacuously. Record it as a failed check so the
  // run exits nonzero instead of shipping a hollow artifact.
  if (table.num_rows() == 0) {
    check("table_nonempty[" + json_state().current_section + "]", false,
          opts);
  }
  if (opts.csv) {
    os << table.to_csv();
  } else {
    table.print(os);
  }
}

void note(const std::string& text, const ReportOptions& opts) {
  if (!opts.csv) std::printf("%s\n", text.c_str());
}

void check(const std::string& name, bool passed, const ReportOptions&) {
  JsonState& state = json_state();
  if (!state.check_names.insert(name).second) {
    // The repeated reading is dropped (recording it would put duplicate
    // keys in the JSON checks object, where a later pass can shadow an
    // earlier failure) and replaced by a failed sentinel, so the run exits
    // nonzero regardless of what the shadowing reading said.
    std::fprintf(stderr,
                 "DUPLICATE CHECK NAME: %s (reading %s dropped)\n",
                 name.c_str(), passed ? "pass" : "FAIL");
    const std::string sentinel = "duplicate_check_name[" + name + "]";
    if (state.check_names.insert(sentinel).second) {
      state.checks.emplace_back(sentinel, false);
    }
    return;
  }
  state.checks.emplace_back(name, passed);
  if (!passed) {
    std::fprintf(stderr, "CHECK FAILED: %s\n", name.c_str());
  }
}

void reset_for_testing() { json_state() = JsonState{}; }

int finish(const ReportOptions& opts) {
  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write JSON report to '%s'\n",
                   opts.json_path.c_str());
      return 1;
    }
    write_json(out);
  }
  for (const auto& [name, passed] : json_state().checks) {
    if (!passed) return 1;
  }
  return 0;
}

}  // namespace cnet::bench
