#include "support/report.hpp"

#include <cstdio>
#include <cstring>

namespace cnet::bench {

ReportOptions ReportOptions::parse(int argc, char** argv) {
  ReportOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--csv")) {
      opts.csv = true;
    } else if (!std::strcmp(argv[i], "--smoke")) {
      opts.smoke = true;
    } else if (!std::strcmp(argv[i], "--help") ||
               !std::strcmp(argv[i], "-h")) {
      std::fprintf(stderr, "usage: %s [--csv] [--smoke]\n", argv[0]);
      std::exit(0);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\nusage: %s [--csv] [--smoke]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

void section(const std::string& title) {
  const std::string bar(65, '=');
  std::printf("%s\n %s\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void emit(const util::Table& table, const ReportOptions& opts,
          std::ostream& os) {
  if (opts.csv) {
    os << table.to_csv();
  } else {
    table.print(os);
  }
}

void note(const std::string& text, const ReportOptions& opts) {
  if (!opts.csv) std::printf("%s\n", text.c_str());
}

}  // namespace cnet::bench
