// Ablation study (§1.3.2, §3.3): what if C(w,t) used the bitonic merger
// (depth lg t) instead of the difference merging network M(t, w/2)
// (depth lg(w/2))? The paper claims the total depth would become a
// function of the output width t. We build that variant and measure
// depth, size, and adversarial contention side by side.
#include <iostream>
#include <string>

#include "cnet/core/ablation.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/contention.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

double contention_of(const topo::Topology& net, std::size_t n) {
  sim::ContentionConfig cfg;
  cfg.concurrency = n;
  cfg.generations = 24;
  return sim::measure_contention(net, cfg).stalls_per_token;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("Ablation: M(t,w/2) (paper) vs bitonic merger inside C(w,t)");
  util::Xoshiro256 rng(0xAB);
  util::Table table({"w", "t", "depth ours", "depth ablated",
                     "balancers ours", "balancers ablated", "both count"});
  for (const std::size_t w : {4u, 8u, 16u}) {
    for (std::size_t t = w; t <= 16 * w && t <= 512; t *= 2) {
      const auto ours = core::make_counting(w, t);
      const auto ablated = core::make_counting_bitonic_merge(w, t);
      const bool ok =
          !topo::check_counting_random(ours, 60, 25, rng).has_value() &&
          !topo::check_counting_random(ablated, 60, 25, rng).has_value();
      table.add_row({util::fmt_int(static_cast<std::int64_t>(w)),
                     util::fmt_int(static_cast<std::int64_t>(t)),
                     util::fmt_int(static_cast<std::int64_t>(ours.depth())),
                     util::fmt_int(static_cast<std::int64_t>(ablated.depth())),
                     util::fmt_int(static_cast<std::int64_t>(ours.num_balancers())),
                     util::fmt_int(static_cast<std::int64_t>(ablated.num_balancers())),
                     ok ? "yes" : "NO"});
    }
  }
  bench::emit(table, opts);
  bench::note(
      "\nexpected shape: 'depth ours' is flat in t (Theorem 4.1); 'depth\n"
      "ablated' grows with every doubling of t (it is Θ(lg w · lg t)).", opts);

  std::puts("");
  bench::section("Contention price of the extra depth (w=16, n=256, adversary)");
  {
    const std::size_t w = 16, n = 256;
    util::Table table2({"t", "ours", "ablated", "ablated/ours"});
    for (std::size_t t = w; t <= 16 * w; t *= 2) {
      const double ours = contention_of(core::make_counting(w, t), n);
      const double ablated =
          contention_of(core::make_counting_bitonic_merge(w, t), n);
      table2.add_row({util::fmt_int(static_cast<std::int64_t>(t)),
                      util::fmt_double(ours, 2),
                      util::fmt_double(ablated, 2),
                      util::fmt_ratio(ablated, ours, 2)});
    }
    table2.print(std::cout);
    bench::note(
        "\nexpected shape: the ablated variant pays more stalls per token\n"
        "as t grows (more layers for tokens to collide in), while the\n"
        "paper's construction improves with t.", opts);
  }
  return cnet::bench::finish(opts);
}
