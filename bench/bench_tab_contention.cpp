// Theorem 6.7 + §1.3.1: amortized contention of C(w,t) under the
// Dwork-Herlihy-Waarts stall measure, against the bitonic and periodic
// networks, measured with the wavefront-convoy adversary in the token
// simulator (the model in which the theorem is stated).
//
// Table A — contention vs concurrency n at fixed w (=16): bitonic and
//           C(w,w) grow with slope ~lg²w/w; C(w, w·lgw) with slope ~lgw/w
//           (the headline lg w improvement).
// Table B — contention vs output width t at fixed w, n: the contention
//           falls as t grows, approaching the n-independent floor, next to
//           the paper's closed-form bound
//           4n·lgw/w + n·lg²w/t + w·lg³w/t + 4lg²w + lgw.
// Table C — the lg w gap: C(w, w·lgw) vs bitonic(w) across w at n = 16w.
#include <cmath>
#include <iostream>
#include <string>

#include "cnet/analysis/bounds.hpp"
#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/contention.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

double contention_of(const topo::Topology& net, std::size_t n) {
  sim::ContentionConfig cfg;
  cfg.concurrency = n;
  cfg.generations = 24;
  cfg.min_tokens = 4096;
  return sim::measure_contention(net, cfg).stalls_per_token;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  bench::section("Table A: stalls/token vs concurrency n (w = 16, adversary)");
  {
    const std::size_t w = 16;
    const std::size_t lgw = util::ilog2(w);
    const auto bitonic = baselines::make_bitonic(w);
    const auto periodic = baselines::make_periodic(w);
    const auto cww = core::make_counting(w, w);
    const auto cwlg = core::make_counting(w, w * lgw);
    util::Table table({"n", "bitonic(16)", "periodic(16)", "C(16,16)",
                       "C(16,64)", "bitonic/C(16,64)"});
    for (const std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      const double cb = contention_of(bitonic, n);
      const double cp = contention_of(periodic, n);
      const double c1 = contention_of(cww, n);
      const double c2 = contention_of(cwlg, n);
      table.add_row({util::fmt_int(static_cast<std::int64_t>(n)),
                     util::fmt_double(cb, 2), util::fmt_double(cp, 2),
                     util::fmt_double(c1, 2), util::fmt_double(c2, 2),
                     util::fmt_ratio(cb, c2, 2)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: all grow ~linearly in n; C(16,64) grows ~lg w\n"
        "times slower than bitonic/C(16,16); periodic is worst (lg^3 w).", opts);
  }

  std::puts("");
  bench::section("Table B: stalls/token vs output width t (w = 16, n = 512)");
  {
    const std::size_t w = 16, n = 512;
    util::Table table({"t", "measured", "paper bound", "bound/measured"});
    for (const std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const std::size_t t = p * w;
      const double measured = contention_of(core::make_counting(w, t), n);
      const double bound = analysis::counting_contention_bound(w, t, n);
      table.add_row({util::fmt_int(static_cast<std::int64_t>(t)),
                     util::fmt_double(measured, 2),
                     util::fmt_double(bound, 1),
                     util::fmt_ratio(bound, measured, 1)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: measured contention decreases monotonically in t\n"
        "and stays below the Theorem 6.7 bound (the bound is not tight).", opts);
  }

  std::puts("");
  bench::section("Table C: the lg w gap — C(w, w lg w) vs bitonic(w), n = 16w");
  {
    util::Table table({"w", "lg w", "bitonic", "C(w,w lg w)", "ratio"});
    for (const std::size_t w : {8u, 16u, 32u, 64u}) {
      const std::size_t lgw = util::ilog2(w);
      const std::size_t n = 16 * w;
      const double cb = contention_of(baselines::make_bitonic(w), n);
      const double co = contention_of(core::make_counting(w, w * lgw), n);
      table.add_row({util::fmt_int(static_cast<std::int64_t>(w)),
                     util::fmt_int(static_cast<std::int64_t>(lgw)),
                     util::fmt_double(cb, 2), util::fmt_double(co, 2),
                     util::fmt_ratio(cb, co, 2)});
    }
    bench::emit(table, opts);
    bench::note(
        "\nexpected shape: the ratio grows with w roughly like lg w\n"
        "(paper §1.3.1: O(n lg^2 w / w) vs O(n lg w / w)).", opts);
  }
  return cnet::bench::finish(opts);
}
