// The experimental comparison of [19,20] (Klein; Klein–Busch–Musser),
// regenerated in the discrete-event queueing model: sustained throughput
// and mean operation latency of each counting structure as concurrency
// grows, with every balancer a unit-time server.
//
// Expected shape (matches the cited study): the central counter wins at
// n = 1 but saturates at 1/service; counting networks scale; at high n the
// wide-output C(w, w·lgw) sustains the highest network throughput because
// its N_c block spreads the queueing over t servers, while the periodic
// network trails (twice the depth). The diffracting tree sits between the
// central counter and the networks (depth lg w but a serial root).
#include <iostream>
#include <string>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/sim/timed_sim.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/table.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

sim::TimedResult run(const topo::Topology& net, std::size_t n) {
  sim::TimedConfig cfg;
  cfg.concurrency = n;
  cfg.total_tokens = std::max<std::size_t>(4000, 24 * n);
  cfg.service_time = 1.0;
  cfg.wire_delay = 0.2;
  // Exponential service: memory/interconnect access times on a real
  // multiprocessor are highly variable, and the variance is what makes
  // queueing depth (and hence the width of N_c) matter.
  cfg.exponential_service = true;
  cfg.seed = 0xC0FFEE;
  return sim::simulate_timed(net, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);
  const std::size_t w = 16;
  const std::size_t lgw = util::ilog2(w);

  struct Net {
    std::string name;
    topo::Topology topo;
  };
  std::vector<Net> nets;
  // The central counter is a single server every token must pass: a
  // width-1 network with one (1,1)-balancer.
  {
    topo::Builder b;
    const auto in = b.add_network_inputs(1);
    b.set_outputs(b.add_balancer(in, 1));
    nets.push_back({"central(1 server)", std::move(b).build()});
  }
  nets.push_back({"difftree(16)", baselines::make_diffracting_tree(w)});
  nets.push_back({"bitonic(16)", baselines::make_bitonic(w)});
  nets.push_back({"periodic(16)", baselines::make_periodic(w)});
  nets.push_back({"C(16,16)", core::make_counting(w, w)});
  nets.push_back({"C(16,64)", core::make_counting(w, w * lgw)});

  std::puts("=================================================================");
  std::puts(" [19,20] shape: throughput (tokens/unit time) vs concurrency n");
  std::puts(" (unit-time balancer servers, wire delay 0.2, closed loop)");
  std::puts("=================================================================");
  {
    std::vector<std::string> headers = {"n"};
    for (const auto& net : nets) headers.push_back(net.name);
    util::Table table(headers);
    for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      std::vector<std::string> row = {
          util::fmt_int(static_cast<std::int64_t>(n))};
      for (const auto& net : nets) {
        row.push_back(util::fmt_double(run(net.topo, n).throughput, 2));
      }
      table.add_row(row);
    }
    bench::emit(table, opts);
  }

  std::puts("");
  bench::section("mean Fetch&Increment latency (time units) vs concurrency n");
  {
    std::vector<std::string> headers = {"n"};
    for (const auto& net : nets) headers.push_back(net.name);
    util::Table table(headers);
    for (const std::size_t n : {1u, 8u, 64u, 256u}) {
      std::vector<std::string> row = {
          util::fmt_int(static_cast<std::int64_t>(n))};
      for (const auto& net : nets) {
        row.push_back(util::fmt_double(run(net.topo, n).mean_latency, 1));
      }
      table.add_row(row);
    }
    bench::emit(table, opts);
  }
  bench::note(
      "\nexpected shape: the central server caps at 1.0; counting networks\n"
      "scale with n; at n >> w, C(16,64) sustains the best network\n"
      "throughput and the lowest latency growth; periodic trails (depth\n"
      "lg^2 w); the diffracting tree caps at its root's service rate.", opts);
  return cnet::bench::finish(opts);
}
