// §7: the sorting-network byproduct. C(w,w) with comparators substituted
// for balancers is a depth-O(lg²w) sorting network; we benchmark it against
// Batcher's bitonic sorter (same depth class) and std::sort, after
// re-verifying both schedules with the 0-1 principle / random permutations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/sort/batcher.hpp"
#include "cnet/sort/comparator_net.hpp"
#include "cnet/util/prng.hpp"

namespace {

using namespace cnet;

std::vector<int> random_values(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.below(1u << 30));
  return v;
}

const sort::ComparatorSchedule& cww_schedule(std::size_t w) {
  static std::map<std::size_t, sort::ComparatorSchedule> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    it = cache.emplace(w, sort::schedule_from_topology(
                              core::make_counting(w, w))).first;
  }
  return it->second;
}

const sort::ComparatorSchedule& batcher_schedule(std::size_t w) {
  static std::map<std::size_t, sort::ComparatorSchedule> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    it = cache.emplace(w, sort::make_batcher_bitonic(w)).first;
  }
  return it->second;
}

void BM_cww_sorter(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto& schedule = cww_schedule(w);
  const auto input = random_values(w, 0x50F7 + w);
  for (auto _ : state) {
    auto v = input;
    sort::apply_in_place(schedule, std::span<int>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(w));
  state.counters["comparators"] =
      static_cast<double>(schedule.comparators.size());
  state.counters["depth"] = static_cast<double>(schedule.depth);
}

void BM_batcher_sorter(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto& schedule = batcher_schedule(w);
  const auto input = random_values(w, 0x50F7 + w);
  for (auto _ : state) {
    auto v = input;
    sort::apply_in_place(schedule, std::span<int>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(w));
  state.counters["comparators"] =
      static_cast<double>(schedule.comparators.size());
  state.counters["depth"] = static_cast<double>(schedule.depth);
}

void BM_std_sort(benchmark::State& state) {
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto input = random_values(w, 0x50F7 + w);
  for (auto _ : state) {
    auto v = input;
    std::sort(v.begin(), v.end(), std::greater<>());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(w));
}

BENCHMARK(BM_cww_sorter)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_batcher_sorter)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_std_sort)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  // Correctness gate before timing (paper §7: C(w,w) sorts).
  std::puts("verifying sorters before timing...");
  for (const std::size_t w : {4u, 8u, 16u}) {
    if (!sort::sorts_all_01(cww_schedule(w)) ||
        !sort::sorts_all_01(batcher_schedule(w))) {
      std::fprintf(stderr, "sorter verification FAILED at w=%zu\n", w);
      return 1;
    }
  }
  for (const std::size_t w : {64u, 256u, 1024u}) {
    if (!sort::sorts_random(cww_schedule(w), 50, 1) ||
        !sort::sorts_random(batcher_schedule(w), 50, 2)) {
      std::fprintf(stderr, "sorter verification FAILED at w=%zu\n", w);
      return 1;
    }
  }
  std::puts("all sorters verified (0-1 principle + random permutations)");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
