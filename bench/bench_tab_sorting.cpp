// §7: the sorting-network byproduct. C(w,w) with comparators substituted
// for balancers is a depth-O(lg²w) sorting network; we benchmark it against
// Batcher's bitonic sorter (same depth class) and std::sort via the
// unified LoadGen harness, after re-verifying both schedules with the
// 0-1 principle / random permutations.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/sort/batcher.hpp"
#include "cnet/sort/comparator_net.hpp"
#include "cnet/util/prng.hpp"
#include "cnet/util/table.hpp"
#include "support/loadgen.hpp"
#include "support/report.hpp"

namespace {

using namespace cnet;

std::vector<int> random_values(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.below(1u << 30));
  return v;
}

const sort::ComparatorSchedule& cww_schedule(std::size_t w) {
  static std::map<std::size_t, sort::ComparatorSchedule> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    it = cache.emplace(w, sort::schedule_from_topology(
                              core::make_counting(w, w))).first;
  }
  return it->second;
}

const sort::ComparatorSchedule& batcher_schedule(std::size_t w) {
  static std::map<std::size_t, sort::ComparatorSchedule> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    it = cache.emplace(w, sort::make_batcher_bitonic(w)).first;
  }
  return it->second;
}

// One LoadGen op = sort one fresh copy of `input`; counted as w items.
bench::LoadGenResult time_sorter(
    const std::vector<int>& input,
    const std::function<void(std::vector<int>&)>& sort_pass) {
  bench::LoadGenConfig cfg;
  cfg.threads = 1;  // the schedules are data-parallel but we time one lane
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.2;
  const auto w = input.size();
  return bench::run_loadgen(cfg, [&, w](std::size_t) {
    auto v = input;
    sort_pass(v);
    return static_cast<std::uint64_t>(w);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::ReportOptions::parse(argc, argv);

  // Correctness gate before timing (paper §7: C(w,w) sorts).
  std::puts("verifying sorters before timing...");
  for (const std::size_t w : {4u, 8u, 16u}) {
    if (!sort::sorts_all_01(cww_schedule(w)) ||
        !sort::sorts_all_01(batcher_schedule(w))) {
      std::fprintf(stderr, "sorter verification FAILED at w=%zu\n", w);
      return 1;
    }
  }
  for (const std::size_t w : {64u, 256u, 1024u}) {
    if (!sort::sorts_random(cww_schedule(w), 50, 1) ||
        !sort::sorts_random(batcher_schedule(w), 50, 2)) {
      std::fprintf(stderr, "sorter verification FAILED at w=%zu\n", w);
      return 1;
    }
  }
  std::puts("all sorters verified (0-1 principle + random permutations)\n");

  bench::section("§7 sorting byproduct: C(w,w) vs Batcher vs std::sort");
  util::Table table({"w", "sorter", "items/s", "ns/pass", "comparators",
                     "depth"});
  for (const std::size_t w : {16u, 64u, 256u, 1024u}) {
    const auto input = random_values(w, 0x50F7 + w);
    struct Row {
      const char* name;
      std::function<void(std::vector<int>&)> pass;
      const sort::ComparatorSchedule* schedule;
    };
    const Row rows[] = {
        {"C(w,w)",
         [&](std::vector<int>& v) {
           sort::apply_in_place(cww_schedule(w), std::span<int>(v));
         },
         &cww_schedule(w)},
        {"batcher",
         [&](std::vector<int>& v) {
           sort::apply_in_place(batcher_schedule(w), std::span<int>(v));
         },
         &batcher_schedule(w)},
        {"std::sort",
         [](std::vector<int>& v) {
           std::sort(v.begin(), v.end(), std::greater<>());
         },
         nullptr},
    };
    for (const Row& row : rows) {
      const auto res = time_sorter(input, row.pass);
      const double passes =
          static_cast<double>(res.total_ops) / static_cast<double>(w);
      table.add_row(
          {util::fmt_int(static_cast<std::int64_t>(w)), row.name,
           bench::fmt_rate(res.ops_per_sec),
           util::fmt_double(passes > 0 ? res.seconds * 1e9 / passes : 0, 0),
           row.schedule ? util::fmt_int(static_cast<std::int64_t>(
                              row.schedule->comparators.size()))
                        : "-",
           row.schedule ? util::fmt_int(
                              static_cast<std::int64_t>(row.schedule->depth))
                        : "-"});
    }
  }
  bench::emit(table, opts);
  bench::note(
      "\nexpected shape: both networks sort obliviously in O(w lg^2 w)\n"
      "comparators; std::sort wins at scale (O(w lg w) adaptive), the\n"
      "schedules win on predictability and parallel depth.",
      opts);
  return cnet::bench::finish(opts);
}
