#!/usr/bin/env python3
"""No-raw-sync lint: every lock and yield goes through util/, mechanically.

PR 9 migrated the tree onto util::Mutex / util::MutexLock (thread-safety-
annotated), and the schedule checker (src/cnet/check/) now virtualizes that
layer: under CNET_SCHED_CHECK every util::Mutex operation and
util::sched_yield is one schedulable step the explorer controls. A raw
``std::mutex`` (or a bare ``std::this_thread::yield`` spin) sneaking back
in outside util/ would be invisible to the checker *and* to the clang
Thread Safety Analysis job — a blind spot in both static-analysis gates at
once. This lint turns that rule from prose into CI:

  raw-include     a file includes <mutex>, <shared_mutex> or
                  <condition_variable> directly
  raw-mutex       code (comments/strings stripped) names std::mutex,
                  std::recursive_mutex, std::shared_mutex, std::timed_mutex
                  or std::condition_variable
  raw-lock        code names std::lock_guard, std::scoped_lock,
                  std::unique_lock or std::shared_lock
  raw-yield       code calls std::this_thread::yield directly (use
                  util::sched_yield, which the explorer can deschedule)

Scope: src/cnet/**/*.{hpp,cpp} minus two allowlisted subtrees:
  src/cnet/util/   — the wrappers themselves (util::Mutex owns the real
                     std::mutex; sched_point.hpp owns the real yield)
  src/cnet/check/  — the explorer's control plane: its scheduler must run
                     on real, *uncontrolled* primitives or it would try to
                     schedule itself

Pure stdlib, no third-party deps. Exit 0 = clean, 1 = violations.
``--self-test`` runs the checker against tests/lint_fixtures/raw_sync/ and
verifies every violation class fires on its bad fixture and stays quiet on
the clean one.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Subtrees (relative to src/cnet) where the raw primitives are the point.
ALLOWED_SUBTREES = ("util/", "check/")

RAW_INCLUDES = {"mutex", "shared_mutex", "condition_variable"}

IDENTIFIER_RULES = [
    ("raw-mutex",
     re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b"),
     "use util::Mutex (annotated, schedule-checkable)"),
    ("raw-mutex",
     re.compile(r"\bstd::condition_variable(?:_any)?\b"),
     "condition variables live in util/ or check/ only"),
    ("raw-lock",
     re.compile(r"\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)"
                r"\b"),
     "use util::MutexLock / util::DualMutexLock"),
    ("raw-yield",
     re.compile(r"\bstd::this_thread::yield\b"),
     "use util::sched_yield so the schedule checker can deschedule the "
     "spin"),
]

INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<([^>]+)>", re.M)


class Violation:
    def __init__(self, path: Path, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.code}] {self.message}"


def strip_comments_and_strings(text: str, *, strings: bool = True) -> str:
    """Blank out comments (and, by default, string/char literals),
    preserving line layout. A ``'`` directly after an alphanumeric is a
    digit separator (1'000), not a char literal."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif strings and (ch == '"' or ch == "'"):
            if ch == "'" and out and (out[-1].isalnum() or out[-1] == "_"):
                out.append(" ")  # digit separator
                i += 1
                continue
            quote = ch
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def check_file(path: Path):
    """All per-file checks. Returns a list of Violations."""
    text = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)
    violations = []

    for match in INCLUDE_RE.finditer(code):
        if match.group(1) in RAW_INCLUDES:
            line = code.count("\n", 0, match.start()) + 1
            violations.append(Violation(
                path, line, "raw-include",
                f"direct #include <{match.group(1)}> outside util/ and "
                "check/ — the raw primitives belong behind the util "
                "wrappers"))

    for code_name, pattern, hint in IDENTIFIER_RULES:
        for match in pattern.finditer(code):
            line = code.count("\n", 0, match.start()) + 1
            violations.append(Violation(
                path, line, code_name,
                f"'{match.group(0)}' outside util/ and check/ — {hint}"))
    return violations


def find_scoped_files(root: Path):
    base = root / "src" / "cnet"
    files = []
    for path in sorted(base.glob("**/*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(base).as_posix()
        if any(rel.startswith(prefix) for prefix in ALLOWED_SUBTREES):
            continue
        files.append(path)
    return files


def run_tree(root: Path) -> int:
    files = find_scoped_files(root)
    if not files:
        print(f"error: no sources found under {root}/src/cnet",
              file=sys.stderr)
        return 1
    violations = []
    for path in files:
        violations.extend(check_file(path))
    for v in violations:
        print(v)
    if violations:
        print(f"\ncheck_raw_sync: {len(violations)} violation(s) across "
              f"{len(files)} file(s).", file=sys.stderr)
        return 1
    print(f"check_raw_sync: {len(files)} file(s) clean — all sync goes "
          "through util/.")
    return 0


# --------------------------------------------------------------- self-test

FIXTURE_DIR = REPO_ROOT / "tests" / "lint_fixtures" / "raw_sync"

# fixture file -> exact set of violation codes it must produce.
FILE_FIXTURES = {
    "clean_sync.cpp": set(),
    "bad_raw_include.cpp": {"raw-include", "raw-mutex", "raw-lock"},
    "bad_raw_mutex.cpp": {"raw-mutex"},
    "bad_raw_lock.cpp": {"raw-lock"},
    "bad_raw_yield.cpp": {"raw-yield"},
}


def run_self_test() -> int:
    failures = []
    for name, expected in sorted(FILE_FIXTURES.items()):
        path = FIXTURE_DIR / name
        if not path.exists():
            failures.append(f"missing fixture {path}")
            continue
        got = {v.code for v in check_file(path)}
        if got != expected:
            failures.append(
                f"{name}: expected violation codes {sorted(expected) or '{}'}"
                f", got {sorted(got) or '{}'}")

    # The scope rule is half the checker: util/ and check/ must be excluded,
    # everything else included.
    scoped = {p.relative_to(REPO_ROOT / "src" / "cnet").as_posix()
              for p in find_scoped_files(REPO_ROOT)}
    for banned_prefix in ALLOWED_SUBTREES:
        leaked = sorted(p for p in scoped if p.startswith(banned_prefix))
        if leaked:
            failures.append(f"scope leak: {leaked[:3]} under {banned_prefix}")
    if not any(p.startswith("svc/") for p in scoped):
        failures.append("scope miss: no svc/ sources in scope")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_raw_sync --self-test: {len(FILE_FIXTURES)} file fixtures "
          "+ scope pin all behaved.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repo root (default: inferred from script path)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker against "
                             "tests/lint_fixtures/raw_sync/")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_tree(args.root)


if __name__ == "__main__":
    sys.exit(main())
