#!/usr/bin/env python3
"""Policy-purity lint: the shared-rules discipline, mechanically enforced.

The repo's central discipline (docs/ARCHITECTURE.md, "The shared-rules
pattern") is that every decision both the live code and the virtual-time
simulator must make lives in a *pure* policy header (``src/cnet/**/policy.hpp``)
— no atomics, no clocks, no randomness, no I/O, no mutable state, no calls
back into the impure service layer. That purity is what makes a CI-gated
simulator scenario a proof about the production path rather than a parallel
reimplementation. This lint turns the discipline from prose into a gate:

  banned-include       a policy header includes an impurity-smuggling
                       standard header (<atomic>, <mutex>, <thread>,
                       <chrono>, <random>, <iostream>, ...)
  banned-identifier    the code (comments/strings stripped) names an impure
                       facility anyway (std::atomic, std::chrono, rand, ...)
  impure-include       a policy header includes a non-policy cnet header
                       (only other policy headers and the pure, allowlisted
                       dist/topology.hpp are legal; allowlisted headers are
                       themselves checked transitively)
  mutable-global       namespace-scope state that is not even const — two
                       callers of a "pure" rule could observe each other
  nonconstexpr-global  namespace-scope constant that is const but not
                       constexpr: runtime-initialized globals have order-of-
                       initialization hazards and defeat constant folding
  doc-stale            the ARCHITECTURE.md rule-family table names a rule no
                       policy header declares (deleting a rule must fail CI
                       until the doc follows)
  doc-missing          a namespace-scope policy function is absent from
                       ARCHITECTURE.md (adding a rule must document it)

Pure stdlib, no third-party deps. Exit 0 = clean, 1 = violations.
``--self-test`` runs the checker against the fixtures in
tests/lint_fixtures/ and verifies every violation class both fires on its
bad fixture and stays quiet on the clean one.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Standard headers whose presence in a policy header means the "pure
# function" story is already lost: threads, time, randomness, streams.
BANNED_STD_HEADERS = {
    "atomic",
    "barrier",
    "chrono",
    "condition_variable",
    "csignal",
    "cstdio",
    "ctime",
    "fstream",
    "future",
    "iostream",
    "istream",
    "latch",
    "mutex",
    "ostream",
    "random",
    "semaphore",
    "shared_mutex",
    "stop_token",
    "thread",
}

# Impure facilities by name, caught even when the header arrived
# transitively. Matched against code with comments and strings stripped.
BANNED_IDENTIFIER_PATTERNS = [
    (re.compile(r"\bstd::atomic\b"), "std::atomic"),
    (re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b"), "std::mutex"),
    (re.compile(r"\bstd::(?:this_)?thread\b"), "std::thread"),
    (re.compile(r"\bstd::chrono\b"), "std::chrono"),
    (re.compile(r"\bstd::(?:random_device|mt19937(?:_64)?|rand)\b"),
     "std::random"),
    (re.compile(r"\bstd::c(?:out|err|log|in)\b"), "std::iostream"),
    (re.compile(r"\b(?:printf|fprintf|rand|srand|time)\s*\("), "C runtime"),
]

# cnet headers a policy header may include: other policy headers, plus the
# explicitly allowlisted pure headers below (checked transitively).
ALLOWED_CNET_INCLUDES = {
    "cnet/dist/topology.hpp",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(<([^>]+)>|"([^"]+)")', re.M)

# Keywords/attributes that can precede a '(' in a declaration without being
# the declared function's name.
NOT_A_FUNCTION_NAME = {
    "alignas", "alignof", "decltype", "defined", "deprecated", "for", "if",
    "likely", "maybe_unused", "nodiscard", "noexcept", "noreturn", "requires",
    "return", "sizeof", "static_assert", "switch", "unlikely", "while",
}

# A namespace-scope statement starting with one of these is not a variable
# declaration (type/alias/forward-decl machinery).
NON_VARIABLE_LEADS = {
    "class", "concept", "enum", "extern", "friend", "namespace",
    "static_assert", "struct", "template", "typedef", "union", "using",
}


class Violation:
    def __init__(self, path: Path, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self) -> str:
        try:
            rel = self.path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.code}] {self.message}"


def strip_comments_and_strings(text: str, *, strings: bool = True) -> str:
    """Blank out comments (and, by default, string/char literals),
    preserving line layout. ``strings=False`` keeps literals — needed when
    scanning for quoted ``#include "..."`` paths. A ``'`` directly after an
    alphanumeric is a digit separator (1'000), not a char literal."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif strings and (ch == '"' or ch == "'"):
            if ch == "'" and out and (out[-1].isalnum() or out[-1] == "_"):
                out.append(" ")  # digit separator
                i += 1
                continue
            quote = ch
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def namespace_scope_statements(code: str):
    """Yield (line, text) for each statement at pure namespace scope.

    Walks the comment/string-stripped code tracking a brace stack. Braces
    opened by a ``namespace`` keep us "at namespace scope"; every other
    brace (struct/class/enum bodies, function bodies, braced initializers)
    is opaque — its contents are skipped. A statement ends at ';' or at the
    close of a non-namespace brace back at namespace scope (a function
    definition's body), whichever comes first.
    """
    stack = []  # True = namespace brace, False = opaque brace
    buf = []
    buf_line = 1
    line = 1
    i = 0
    n = len(code)

    def at_ns_scope() -> bool:
        return all(stack)

    def flush():
        nonlocal buf, buf_line
        stmt = " ".join("".join(buf).split())
        if stmt:
            yield_val = (buf_line, stmt)
            buf = []
            buf_line = line
            return yield_val
        buf = []
        buf_line = line
        return None

    while i < n:
        ch = code[i]
        if ch == "\n":
            line += 1
            if not buf:
                buf_line = line
            else:
                buf.append(" ")
            i += 1
            continue
        if at_ns_scope():
            if ch == "{":
                stmt_so_far = "".join(buf).strip()
                is_namespace = re.match(r"(inline\s+)?namespace\b",
                                        stmt_so_far) is not None
                stack.append(bool(is_namespace))
                if is_namespace:
                    out = flush()
                    if out:
                        yield out
                else:
                    buf.append(" ")  # opaque body elided from the statement
                i += 1
                continue
            if ch == "}":
                if stack:
                    stack.pop()
                out = flush()
                if out:
                    yield out
                i += 1
                continue
            if ch == ";":
                out = flush()
                if out:
                    yield out
                i += 1
                continue
            if ch == "#":  # preprocessor line: consume to EOL, not a stmt
                while i < n and code[i] != "\n":
                    i += 1
                continue
            buf.append(ch)
            i += 1
        else:
            # Inside an opaque brace: only track nesting.
            if ch == "{":
                stack.append(False)
            elif ch == "}":
                if stack:
                    stack.pop()
                if at_ns_scope():
                    # Closed a function/struct body at namespace scope: the
                    # accumulated head (e.g. "inline double f(x)") is one
                    # complete declaration.
                    out = flush()
                    if out:
                        yield out
            i += 1


def declared_function_names(code: str):
    """Names of functions declared/defined at namespace scope."""
    names = set()
    for _line, stmt in namespace_scope_statements(code):
        lead = stmt.split(None, 1)[0] if stmt else ""
        if lead in NON_VARIABLE_LEADS and lead != "template":
            continue
        if "(" not in stmt:
            continue
        for match in re.finditer(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\(", stmt):
            name = match.group(1)
            if name in NOT_A_FUNCTION_NAME or name.isupper():
                continue
            names.add(name)
            break  # leftmost plausible identifier is the declared name
    return names


def check_globals(path: Path, code: str):
    """mutable-global / nonconstexpr-global over namespace-scope variables."""
    violations = []
    for line, stmt in namespace_scope_statements(code):
        if not stmt or stmt.startswith("["):
            continue
        lead = stmt.split(None, 1)[0]
        if lead in NON_VARIABLE_LEADS:
            continue
        if "(" in stmt:  # function declaration/definition
            continue
        tokens = re.findall(r"[A-Za-z_][A-Za-z0-9_:]*", stmt)
        if len(tokens) < 2:  # need at least a type and a name
            continue
        if "constexpr" in tokens or "consteval" in tokens or \
                "constinit" in tokens:
            continue
        name = tokens[-1] if "=" not in stmt else \
            re.findall(r"[A-Za-z_][A-Za-z0-9_]*", stmt.split("=", 1)[0])[-1]
        if "const" in tokens:
            violations.append(Violation(
                path, line, "nonconstexpr-global",
                f"namespace-scope constant '{name}' is const but not "
                "constexpr (runtime init order hazard; make it "
                "'inline constexpr')"))
        else:
            violations.append(Violation(
                path, line, "mutable-global",
                f"mutable namespace-scope state '{name}' in a policy header "
                "(pure rules cannot share mutable state)"))
    return violations


def check_file(path: Path, *, transitive_of: str | None = None):
    """All single-file checks. Returns a list of Violations."""
    text = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)
    includes = strip_comments_and_strings(text, strings=False)
    violations = []
    origin = f" (allowlisted from {transitive_of})" if transitive_of else ""

    for match in INCLUDE_RE.finditer(includes):
        line = includes.count("\n", 0, match.start()) + 1
        angle, quoted = match.group(2), match.group(3)
        if angle is not None:
            if angle in BANNED_STD_HEADERS:
                violations.append(Violation(
                    path, line, "banned-include",
                    f"policy header includes <{angle}>{origin}"))
        elif quoted is not None and quoted.startswith("cnet/"):
            if quoted in ALLOWED_CNET_INCLUDES or \
                    quoted.endswith("/policy.hpp"):
                continue
            violations.append(Violation(
                path, line, "impure-include",
                f'policy header includes non-policy cnet header "{quoted}"'
                f"{origin}"))

    for pattern, label in BANNED_IDENTIFIER_PATTERNS:
        for match in pattern.finditer(code):
            line = code.count("\n", 0, match.start()) + 1
            violations.append(Violation(
                path, line, "banned-identifier",
                f"policy code references {label} "
                f"('{match.group(0).strip()}'){origin}"))

    violations.extend(check_globals(path, code))
    return violations


def find_policy_headers(root: Path):
    return sorted((root / "src" / "cnet").glob("**/policy.hpp"))


DOC_TABLE_HEADING = "Current rule families:"
IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def doc_table_identifiers(doc_text: str):
    """Backticked identifiers in column 1 of the rule-family table."""
    idents = {}
    in_table = False
    for lineno, line in enumerate(doc_text.splitlines(), start=1):
        if DOC_TABLE_HEADING in line:
            in_table = True
            continue
        if in_table:
            stripped = line.strip()
            if stripped.startswith("|"):
                first_col = stripped.split("|")[1]
                if set(first_col.strip()) <= {"-", ":", " "}:
                    continue  # separator row
                for token in re.findall(r"`([^`]+)`", first_col):
                    if IDENT_RE.match(token):
                        idents.setdefault(token, lineno)
            elif stripped and not stripped.startswith("|"):
                if idents:  # table ended
                    break
    return idents


def check_docs(doc_path: Path, header_paths):
    """Both directions of the doc cross-check."""
    violations = []
    doc_text = doc_path.read_text(encoding="utf-8")
    table = doc_table_identifiers(doc_text)

    declared = {}
    all_words = set()
    for hpath in header_paths:
        code = strip_comments_and_strings(hpath.read_text(encoding="utf-8"))
        for name in declared_function_names(code):
            declared.setdefault(name, hpath)
        all_words.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", code))

    for ident, lineno in sorted(table.items()):
        if ident not in all_words:
            violations.append(Violation(
                doc_path, lineno, "doc-stale",
                f"rule-family table names `{ident}` but no policy header "
                "declares it"))

    doc_mentions = set(re.findall(r"`([^`\s]+)`", doc_text))
    for name, hpath in sorted(declared.items()):
        if name not in doc_mentions:
            try:
                rel = hpath.resolve().relative_to(REPO_ROOT)
            except ValueError:
                rel = hpath
            violations.append(Violation(
                doc_path, 1, "doc-missing",
                f"policy rule `{name}` ({rel}) is not documented in "
                f"{doc_path.name}'s rule-family table"))
    return violations


def run_tree(root: Path) -> int:
    headers = find_policy_headers(root)
    if not headers:
        print(f"error: no policy headers found under {root}/src/cnet",
              file=sys.stderr)
        return 1
    violations = []
    for header in headers:
        violations.extend(check_file(header))
    # Transitive purity of allowlisted headers: an impure facility smuggled
    # through topology.hpp is exactly as fatal as a direct include.
    for allowed in sorted(ALLOWED_CNET_INCLUDES):
        apath = root / "src" / allowed
        if apath.exists():
            violations.extend(
                check_file(apath, transitive_of="policy allowlist"))
    doc_path = root / "docs" / "ARCHITECTURE.md"
    if doc_path.exists():
        violations.extend(check_docs(doc_path, headers))
    else:
        violations.append(Violation(doc_path, 1, "doc-stale",
                                    "docs/ARCHITECTURE.md not found"))
    for v in violations:
        print(v)
    checked = len(headers) + len(ALLOWED_CNET_INCLUDES)
    if violations:
        print(f"\ncheck_policy_purity: {len(violations)} violation(s) "
              f"across {checked} header(s).", file=sys.stderr)
        return 1
    print(f"check_policy_purity: {checked} header(s) pure, doc cross-check "
          "clean.")
    return 0


# --------------------------------------------------------------- self-test

FIXTURE_DIR = REPO_ROOT / "tests" / "lint_fixtures"

# fixture file -> exact set of violation codes it must produce.
FILE_FIXTURES = {
    "clean_policy.hpp": set(),
    "bad_banned_include.hpp": {"banned-include"},
    "bad_banned_identifier.hpp": {"banned-identifier"},
    "bad_impure_include.hpp": {"impure-include"},
    "bad_mutable_global.hpp": {"mutable-global"},
    "bad_nonconstexpr_global.hpp": {"nonconstexpr-global"},
}


def run_self_test() -> int:
    failures = []
    for name, expected in sorted(FILE_FIXTURES.items()):
        path = FIXTURE_DIR / name
        if not path.exists():
            failures.append(f"missing fixture {path}")
            continue
        got = {v.code for v in check_file(path)}
        if got != expected:
            failures.append(
                f"{name}: expected violation codes {sorted(expected) or '{}'}"
                f", got {sorted(got) or '{}'}")

    clean = FIXTURE_DIR / "clean_policy.hpp"
    doc_ok = FIXTURE_DIR / "doc_ok.md"
    doc_bad = FIXTURE_DIR / "doc_out_of_sync.md"
    if clean.exists() and doc_ok.exists():
        got = {v.code for v in check_docs(doc_ok, [clean])}
        if got:
            failures.append(f"doc_ok.md: expected clean, got {sorted(got)}")
    else:
        failures.append("missing doc_ok.md fixture")
    if clean.exists() and doc_bad.exists():
        got = {v.code for v in check_docs(doc_bad, [clean])}
        want = {"doc-stale", "doc-missing"}
        if got != want:
            failures.append(
                f"doc_out_of_sync.md: expected {sorted(want)}, "
                f"got {sorted(got)}")
    else:
        failures.append("missing doc_out_of_sync.md fixture")

    # The function-name extractor feeds both doc directions; pin it.
    if clean.exists():
        code = strip_comments_and_strings(clean.read_text(encoding="utf-8"))
        names = declared_function_names(code)
        want_names = {"frob_margin", "settle_ratio"}
        if names != want_names:
            failures.append(
                f"clean_policy.hpp: extractor found {sorted(names)}, "
                f"expected {sorted(want_names)}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_policy_purity --self-test: {len(FILE_FIXTURES)} file "
          "fixtures + 2 doc fixtures + extractor pin all behaved.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repo root (default: inferred from script path)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker against tests/lint_fixtures/")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    return run_tree(args.root)


if __name__ == "__main__":
    sys.exit(main())
