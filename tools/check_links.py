#!/usr/bin/env python3
"""Markdown intra-repo link checker for the docs CI job.

Scans README.md, ROADMAP.md, and docs/**/*.md for inline markdown links
([text](target)) and verifies every intra-repo target resolves:

  - relative file/directory targets must exist on disk (resolved against
    the markdown file's own directory, confined to the repo root);
  - a '#anchor' suffix on a markdown target must match a heading in that
    file, using GitHub's slug rules (lowercase, spaces -> '-', punctuation
    stripped, duplicate slugs suffixed -1, -2, ...);
  - bare '#anchor' targets are checked against the current file.

External links (http/https/mailto) are listed but never fetched. Stdlib
only; exits nonzero iff any intra-repo link is broken.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links only ([text](target)); images share the syntax and are
# checked too. Reference-style links are not used in this repo.
LINK_RE = re.compile(r"(!?)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code/links, lowercase,
    drop punctuation, spaces and hyphens become hyphens."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](u) -> t
    text = re.sub(r"[`*_]", "", text)
    text = text.strip().lower()
    out = []
    for ch in text:
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-")
        # everything else (punctuation) is dropped
    return "".join(out)


def heading_slugs(md_path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes, with GitHub's -N dedup."""
    counts: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(md_path: Path):
    """Yield (line_number, is_image, target) for every inline link outside
    code fences, skipping inline-code spans so grammar examples aren't
    parsed as links."""
    in_fence = False
    for lineno, line in enumerate(
        md_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(stripped):
            yield lineno, m.group(1) == "!", m.group(2)


def check_file(md_path: Path) -> list[str]:
    errors = []
    for lineno, is_image, target in iter_links(md_path):
        where = f"{md_path.relative_to(REPO_ROOT)}:{lineno}"
        if target.startswith(EXTERNAL_PREFIXES):
            continue  # external: listed in --verbose runs only, never fetched
        path_part, _, anchor = target.partition("#")
        if not path_part:  # bare '#anchor' -> this file
            dest = md_path
        else:
            dest = (md_path.parent / path_part).resolve()
            try:
                dest.relative_to(REPO_ROOT)
            except ValueError:
                # Badges (image links) legitimately point at the hosting
                # site's web routes, e.g. ../../actions/.../badge.svg on
                # GitHub — those aren't files in the working tree.
                if not is_image:
                    errors.append(f"{where}: link escapes the repo: {target}")
                continue
            if not dest.exists():
                errors.append(f"{where}: broken link: {target}")
                continue
        if anchor:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                errors.append(
                    f"{where}: anchor on a non-markdown target: {target}"
                )
                continue
            if github_slug(anchor) not in heading_slugs(dest):
                errors.append(f"{where}: missing anchor: {target}")
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    files += sorted((REPO_ROOT / "docs").rglob("*.md"))
    files = [f for f in files if f.exists()]

    all_errors = []
    checked = 0
    for md in files:
        errs = check_file(md)
        checked += 1
        all_errors.extend(errs)

    if all_errors:
        for e in all_errors:
            print(e, file=sys.stderr)
        print(
            f"\n{len(all_errors)} broken link(s) across {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"all intra-repo links OK across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
