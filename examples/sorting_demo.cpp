// Sorting with the §7 byproduct: the counting network C(w,w) with its
// balancers replaced by comparators is a depth-O(lg²w) sorting network.
// This demo derives the comparator schedule, verifies it with the 0-1
// principle, and uses it to sort user-supplied (or random) numbers — also
// showing the layer structure a hardware/SIMD implementation would exploit.
//
// Usage: ./examples/sorting_demo [n1 n2 n3 ...]   (pads to a power of two)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/sort/batcher.hpp"
#include "cnet/sort/comparator_net.hpp"
#include "cnet/util/bitops.hpp"
#include "cnet/util/prng.hpp"

int main(int argc, char** argv) {
  // Collect inputs (or make some up) and pad to the next power of two with
  // -inf sentinels that sink to the bottom of a descending sort.
  std::vector<long long> values;
  for (int i = 1; i < argc; ++i) values.push_back(std::atoll(argv[i]));
  if (values.empty()) {
    cnet::util::Xoshiro256 rng(0xDE40);
    for (int i = 0; i < 12; ++i) {
      values.push_back(static_cast<long long>(rng.below(1000)));
    }
  }
  const std::size_t w =
      std::max<std::size_t>(2, cnet::util::next_pow2(values.size()));
  const std::size_t real = values.size();
  values.resize(w, std::numeric_limits<long long>::min());

  // Derive the comparator schedule from C(w,w).
  const auto topology = cnet::core::make_counting(w, w);
  const auto schedule = cnet::sort::schedule_from_topology(topology);
  std::printf("sorter derived from C(%zu,%zu): %zu comparators in %zu "
              "layers\n",
              w, w, schedule.comparators.size(), schedule.depth);

  // Verify it really sorts (0-1 principle for small w, sampling otherwise).
  const bool verified = w <= 16 ? cnet::sort::sorts_all_01(schedule)
                                : cnet::sort::sorts_random(schedule, 100, 7);
  std::printf("verification (%s): %s\n",
              w <= 16 ? "0-1 principle, exhaustive" : "random permutations",
              verified ? "PASS" : "FAIL");
  if (!verified) return 1;

  const auto sorted = cnet::sort::apply(schedule, values);
  std::printf("input :");
  for (std::size_t i = 0; i < real; ++i) {
    std::printf(" %lld", values[i]);
  }
  std::printf("\nsorted:");
  for (std::size_t i = 0; i < real; ++i) {
    std::printf(" %lld", sorted[i]);
  }
  std::printf("  (descending)\n");

  // Compare the layer count with Batcher's classical bitonic sorter.
  const auto batcher = cnet::sort::make_batcher_bitonic(w);
  std::printf("batcher bitonic sorter: %zu comparators in %zu layers "
              "(same depth class)\n",
              batcher.comparators.size(), batcher.depth);
  const bool ok = std::is_sorted(sorted.begin(), sorted.end(),
                                 std::greater<>());
  return ok ? 0 : 1;
}
