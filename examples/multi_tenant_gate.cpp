// Multi-tenant admission gate: svc::QuotaHierarchy in front of a skewed
// tenant population. One hot tenant gets most of the offered load (and a
// proportionally larger weight); the cold tenants trickle along. Whatever
// the hot tenant does, it can never hold more parent tokens than its
// weighted borrow cap — so the cold tenants' in-cap borrows keep
// succeeding, which is the whole point of hierarchical quotas over one
// shared pool.
//
// Usage: ./examples/multi_tenant_gate [parent-backend] [tenants] [hot-extra]
//   parent-backend: central-atomic | central-cas | central-mutex | network |
//                   batched-network | adaptive, optionally "elim+"-prefixed
//                   (the parent pool spec)      (default: batched-network)
//   tenants:        tenant count (>= 2)         (default: 4)
//   hot-extra:      extra threads piled onto tenant 0, which also gets
//                   weight 1 + hot-extra        (default: 4)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cnet/svc/quota.hpp"
#include "cnet/util/cacheline.hpp"
#include "support/loadgen.hpp"

int main(int argc, char** argv) {
  const char* backend_name = argc > 1 ? argv[1] : "batched-network";
  const std::size_t tenants =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4;
  const std::size_t hot_extra =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 4;

  const auto spec = cnet::svc::parse_backend_spec(backend_name);
  if (!spec) {
    std::fprintf(stderr, "bad backend \"%s\": %s\n", backend_name,
                 spec.error.c_str());
  }
  if (!spec || tenants < 2 || tenants > 128 || hot_extra > 64) {
    std::fprintf(stderr,
                 "usage: multi_tenant_gate [[elim+]central-atomic|"
                 "central-cas|central-mutex|network|batched-network|"
                 "adaptive] [2<=tenants<=128] [hot-extra<=64]\n");
    return 2;
  }
  const std::size_t threads = tenants + hot_extra;

  // Each child starts with one token; the parent budget is two tokens per
  // tenant, capacity one above it (the isolation sizing rule), split by
  // weight: tenant 0 carries 1 + hot_extra, everyone else 1.
  cnet::svc::QuotaHierarchy::Config cfg;
  cfg.parent = *spec;
  cfg.borrow_budget = 2 * tenants;
  cfg.parent_initial_tokens = cfg.borrow_budget + 1;
  std::vector<cnet::svc::QuotaHierarchy::TenantConfig> tenant_cfgs(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    tenant_cfgs[i].initial_tokens = 1;
    tenant_cfgs[i].weight = i == 0 ? 1 + hot_extra : 1;
  }
  cnet::svc::QuotaHierarchy gate(cfg, std::move(tenant_cfgs));

  constexpr std::size_t kRing = 2;  // grants each thread holds at steady state
  struct alignas(cnet::util::kCacheLine) Tally {
    std::uint64_t attempts = 0;
    std::uint64_t admitted = 0;
    std::uint64_t peak_borrowed = 0;
    bool cap_violated = false;
    std::size_t slot = 0;
    cnet::svc::QuotaHierarchy::Grant ring[kRing];
  };
  std::vector<Tally> tallies(threads);
  // Threads 0..hot_extra hammer tenant 0; thread hot_extra+i drives tenant i.
  const auto tenant_of = [&](std::size_t t) {
    return t <= hot_extra ? std::size_t{0} : t - hot_extra;
  };

  cnet::bench::LoadGenConfig lg;
  lg.threads = threads;
  lg.warmup_seconds = 0.2;
  lg.measure_seconds = 1.0;
  lg.latency_sample_every = 0;
  const auto result = cnet::bench::run_loadgen(lg, [&](std::size_t t) {
    Tally& tally = tallies[t];
    const std::size_t tenant = tenant_of(t);
    auto& held = tally.ring[tally.slot];
    tally.slot = (tally.slot + 1) % kRing;
    if (held.admitted) {
      gate.release(t, held);
      held = {};
    }
    const auto grant = gate.acquire(t, tenant, 1);
    ++tally.attempts;
    if (grant.admitted) {
      ++tally.admitted;
      held = grant;
    }
    const std::uint64_t borrowed = gate.borrowed(tenant);
    tally.peak_borrowed = std::max(tally.peak_borrowed, borrowed);
    if (borrowed > gate.borrow_limit(tenant)) tally.cap_violated = true;
    return std::uint64_t{1};
  });

  // Quiescent teardown: hand every held grant back, then aggregate.
  bool cap_violated = false;
  std::vector<std::uint64_t> attempts(tenants, 0), admitted(tenants, 0),
      peak(tenants, 0);
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t tenant = tenant_of(t);
    attempts[tenant] += tallies[t].attempts;
    admitted[tenant] += tallies[t].admitted;
    peak[tenant] = std::max(peak[tenant], tallies[t].peak_borrowed);
    cap_violated = cap_violated || tallies[t].cap_violated;
    for (const auto& grant : tallies[t].ring) {
      if (grant.admitted) gate.release(t, grant);
    }
  }

  std::printf("gate      : %s\n", gate.name().c_str());
  std::printf("tenants   : %zu (tenant 0 hot: %zu threads, weight %llu)\n",
              tenants, 1 + hot_extra,
              static_cast<unsigned long long>(gate.weight(0)));
  std::printf("parent    : %llu tokens, borrow budget %llu\n",
              static_cast<unsigned long long>(cfg.parent_initial_tokens),
              static_cast<unsigned long long>(cfg.borrow_budget));
  std::printf("offered   : %s over %.2fs\n\n",
              cnet::bench::fmt_rate(result.ops_per_sec).c_str(),
              result.seconds);
  std::printf("  tenant  weight  cap  peak-borrow  attempts  admit%%\n");
  const std::size_t shown = std::min<std::size_t>(tenants, 8);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  %6zu  %6llu  %3llu  %11llu  %8llu  %5.1f%%\n", i,
                static_cast<unsigned long long>(gate.weight(i)),
                static_cast<unsigned long long>(gate.borrow_limit(i)),
                static_cast<unsigned long long>(peak[i]),
                static_cast<unsigned long long>(attempts[i]),
                attempts[i] == 0 ? 0.0
                                 : 100.0 * static_cast<double>(admitted[i]) /
                                       static_cast<double>(attempts[i]));
  }
  if (shown < tenants) std::printf("  ... (%zu more)\n", tenants - shown);

  // Verdicts: the cap held at every sample; with all grants released the
  // outstanding borrow is zero everywhere (the conservation face of
  // "releases return to the level they came from").
  bool outstanding_clear = true;
  for (std::size_t i = 0; i < tenants; ++i) {
    outstanding_clear = outstanding_clear && gate.borrowed(i) == 0;
  }
  std::printf("\nborrow caps respected : %s\n",
              cap_violated ? "VIOLATED" : "yes");
  std::printf("outstanding after run : %s\n",
              outstanding_clear ? "zero (all grants returned)" : "LEAKED");
  return !cap_violated && outstanding_clear ? 0 : 1;
}
