// Load balancing through a counting network — the first motivating
// application in paper §1.1.
//
// A pool of producer threads dispatches jobs to `t` worker queues. Routing
// each job through C(w, t) and enqueueing it on the exit wire's queue
// guarantees (by the step property) that queue lengths never differ by more
// than one — without any central dispatcher. We contrast this with random
// assignment, whose imbalance grows like sqrt(m).
//
// Build & run:  ./examples/load_balancing [jobs-per-thread]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/compiled_network.hpp"
#include "cnet/util/cacheline.hpp"
#include "cnet/util/prng.hpp"

namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kWidthIn = 8;
constexpr std::size_t kQueues = 16;  // t = 2w

struct QueueLengths {
  std::vector<cnet::util::Padded<std::atomic<std::int64_t>>> len{kQueues};
  std::int64_t min() const {
    std::int64_t m = len[0].value.load();
    for (const auto& q : len) m = std::min(m, q.value.load());
    return m;
  }
  std::int64_t max() const {
    std::int64_t m = len[0].value.load();
    for (const auto& q : len) m = std::max(m, q.value.load());
    return m;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs_per_thread =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;

  // Network-balanced dispatch.
  const auto topology = cnet::core::make_counting(kWidthIn, kQueues);
  cnet::rt::CompiledNetwork net(topology);
  QueueLengths balanced;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::size_t i = 0; i < jobs_per_thread; ++i) {
          const std::size_t q = net.traverse(
              t % kWidthIn, cnet::rt::BalancerMode::kFetchAdd, nullptr);
          balanced.len[q].value.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  // Random dispatch baseline.
  QueueLengths random;
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        cnet::util::Xoshiro256 rng(0xD15F + t);
        for (std::size_t i = 0; i < jobs_per_thread; ++i) {
          random.len[rng.below(kQueues)].value.fetch_add(
              1, std::memory_order_relaxed);
        }
      });
    }
  }

  const auto total =
      static_cast<std::int64_t>(kThreads * jobs_per_thread);
  std::printf("dispatched %lld jobs to %zu queues from %zu threads\n\n",
              static_cast<long long>(total), kQueues, kThreads);
  std::printf("%-22s %8s %8s %10s\n", "dispatcher", "min", "max",
              "imbalance");
  std::printf("%-22s %8lld %8lld %10lld\n", "counting-network C(8,16)",
              static_cast<long long>(balanced.min()),
              static_cast<long long>(balanced.max()),
              static_cast<long long>(balanced.max() - balanced.min()));
  std::printf("%-22s %8lld %8lld %10lld\n", "uniform random",
              static_cast<long long>(random.min()),
              static_cast<long long>(random.max()),
              static_cast<long long>(random.max() - random.min()));

  // The step property guarantees imbalance <= 1.
  const bool ok = balanced.max() - balanced.min() <= 1;
  std::printf("\ncounting-network imbalance <= 1: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
