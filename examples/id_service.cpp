// Ticket/ID dispenser with a pluggable counter backend — a miniature
// version of the experimental comparison in the paper's cited study
// [Klein'03 / Klein-Busch-Musser'06]: pick a backend, measure sustained
// Fetch&Increment throughput under a chosen thread count via the unified
// LoadGen harness (warmup + timed phase, latency percentiles).
//
// Usage: ./examples/id_service [backend] [threads] [batch]
//   backend: central | cas | mutex | bitonic | periodic | cww | cwt |
//            cwt-batch | difftree   (default: cwt, i.e. C(8, 8*lg8)=C(8,24))
//   batch:   tokens claimed per call (default 1; >1 uses the widened
//            fetch_increment_batch API — cwt-batch amortizes it through
//            the network, every other backend loops)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/difftree_rt.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/util/cacheline.hpp"
#include "support/loadgen.hpp"

namespace {

std::unique_ptr<cnet::rt::Counter> make_backend(const char* name) {
  using namespace cnet;
  if (!std::strcmp(name, "central")) return std::make_unique<rt::AtomicCounter>();
  if (!std::strcmp(name, "cas")) return std::make_unique<rt::CasCounter>();
  if (!std::strcmp(name, "mutex")) return std::make_unique<rt::MutexCounter>();
  if (!std::strcmp(name, "bitonic")) {
    return std::make_unique<rt::NetworkCounter>(baselines::make_bitonic(8),
                                                "bitonic(8)");
  }
  if (!std::strcmp(name, "periodic")) {
    return std::make_unique<rt::NetworkCounter>(baselines::make_periodic(8),
                                                "periodic(8)");
  }
  if (!std::strcmp(name, "cww")) {
    return std::make_unique<rt::NetworkCounter>(core::make_counting(8, 8),
                                                "C(8,8)");
  }
  if (!std::strcmp(name, "cwt")) {
    return std::make_unique<rt::NetworkCounter>(core::make_counting(8, 24),
                                                "C(8,24)");
  }
  if (!std::strcmp(name, "cwt-batch")) {
    return std::make_unique<rt::BatchedNetworkCounter>(
        core::make_counting(8, 24), "batched C(8,24)");
  }
  if (!std::strcmp(name, "difftree")) {
    rt::DiffractingTreeCounter::Config cfg;
    cfg.leaves = 8;
    return std::make_unique<rt::DiffractingTreeCounter>(cfg);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* backend_name = argc > 1 ? argv[1] : "cwt";
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;
  const std::size_t batch =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1;

  auto counter = make_backend(backend_name);
  if (!counter || threads == 0 || threads > 256 || batch == 0 ||
      batch > 4096) {
    std::fprintf(stderr,
                 "unknown backend '%s', thread count not in 1..256, or "
                 "batch size not in 1..4096 (backends: central cas mutex "
                 "bitonic periodic cww cwt cwt-batch difftree)\n",
                 backend_name);
    return 2;
  }

  cnet::bench::LoadGenConfig cfg;
  cfg.threads = threads;
  cfg.warmup_seconds = 0.2;
  cfg.measure_seconds = 1.0;

  // Per-thread tally over every call (warmup included): claimed-ticket
  // count and the largest ticket seen, for the uniqueness check below.
  struct alignas(cnet::util::kCacheLine) Tally {
    std::vector<std::int64_t> values;
    std::uint64_t claimed = 0;
    std::int64_t max_seen = -1;
  };
  std::vector<Tally> tallies(threads);
  for (auto& tally : tallies) tally.values.resize(batch);
  const auto result =
      cnet::bench::run_loadgen(cfg, [&](std::size_t t) {
        Tally& tally = tallies[t];
        counter->fetch_increment_batch(t, batch, tally.values.data());
        tally.claimed += batch;
        for (const auto v : tally.values) {
          tally.max_seen = std::max(tally.max_seen, v);
        }
        return static_cast<std::uint64_t>(batch);
      });

  std::printf("backend      : %s\n", counter->name().c_str());
  std::printf("threads      : %zu\n", result.threads);
  std::printf("batch        : %zu token(s)/call\n", batch);
  std::printf("measured     : %.3f s (after %.1fs warmup)\n", result.seconds,
              cfg.warmup_seconds);
  std::printf("tickets      : %llu\n",
              static_cast<unsigned long long>(result.total_ops));
  std::printf("throughput   : %s (%.0f tickets/s)\n",
              cnet::bench::fmt_rate(result.ops_per_sec).c_str(),
              result.ops_per_sec);
  if (result.has_latency) {
    std::printf("latency/call : p50 %s   p99 %s   max %s\n",
                cnet::bench::fmt_ns(result.p50_ns).c_str(),
                cnet::bench::fmt_ns(result.p99_ns).c_str(),
                cnet::bench::fmt_ns(result.max_ns).c_str());
  }
  std::printf("fairness     : %llu..%llu tickets/thread\n",
              static_cast<unsigned long long>(result.min_thread_ops),
              static_cast<unsigned long long>(result.max_thread_ops));
  std::printf("observed stalls: %llu\n",
              static_cast<unsigned long long>(counter->stall_count()));

  // Sanity: every backend hands out exactly the tickets 0..N-1 for N calls,
  // so after joining, the largest ticket seen must equal total-claimed − 1.
  // A smaller max means some ticket was handed out twice.
  std::uint64_t total_claimed = 0;
  std::int64_t max_seen = -1;
  for (const auto& tally : tallies) {
    total_claimed += tally.claimed;
    max_seen = std::max(max_seen, tally.max_seen);
  }
  const bool ok =
      max_seen + 1 == static_cast<std::int64_t>(total_claimed);
  std::printf("max ticket   : %lld (%llu claimed) — %s\n",
              static_cast<long long>(max_seen),
              static_cast<unsigned long long>(total_claimed),
              ok ? "unique" : "DUPLICATES");
  return ok ? 0 : 1;
}
