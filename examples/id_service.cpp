// Ticket/ID dispenser with a pluggable counter backend — a miniature
// version of the experimental comparison in the paper's cited study
// [Klein'03 / Klein-Busch-Musser'06]: pick a backend, measure sustained
// Fetch&Increment throughput under a chosen thread count.
//
// Usage: ./examples/id_service [backend] [threads] [ops-per-thread]
//   backend: central | cas | mutex | bitonic | periodic | cww | cwt |
//            difftree   (default: cwt, i.e. C(8, 8*lg8)=C(8,24))
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/central.hpp"
#include "cnet/runtime/difftree_rt.hpp"
#include "cnet/runtime/network_counter.hpp"

namespace {

std::unique_ptr<cnet::rt::Counter> make_backend(const char* name) {
  using namespace cnet;
  if (!std::strcmp(name, "central")) return std::make_unique<rt::AtomicCounter>();
  if (!std::strcmp(name, "cas")) return std::make_unique<rt::CasCounter>();
  if (!std::strcmp(name, "mutex")) return std::make_unique<rt::MutexCounter>();
  if (!std::strcmp(name, "bitonic")) {
    return std::make_unique<rt::NetworkCounter>(baselines::make_bitonic(8),
                                                "bitonic(8)");
  }
  if (!std::strcmp(name, "periodic")) {
    return std::make_unique<rt::NetworkCounter>(baselines::make_periodic(8),
                                                "periodic(8)");
  }
  if (!std::strcmp(name, "cww")) {
    return std::make_unique<rt::NetworkCounter>(core::make_counting(8, 8),
                                                "C(8,8)");
  }
  if (!std::strcmp(name, "cwt")) {
    return std::make_unique<rt::NetworkCounter>(core::make_counting(8, 24),
                                                "C(8,24)");
  }
  if (!std::strcmp(name, "difftree")) {
    rt::DiffractingTreeCounter::Config cfg;
    cfg.leaves = 8;
    return std::make_unique<rt::DiffractingTreeCounter>(cfg);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* backend_name = argc > 1 ? argv[1] : "cwt";
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;
  const std::size_t per_thread =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 100000;

  auto counter = make_backend(backend_name);
  if (!counter) {
    std::fprintf(stderr,
                 "unknown backend '%s' (try: central cas mutex bitonic "
                 "periodic cww cwt difftree)\n",
                 backend_name);
    return 2;
  }

  std::vector<std::int64_t> last(threads, -1);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t v = -1;
        for (std::size_t i = 0; i < per_thread; ++i) {
          v = counter->fetch_increment(t);
        }
        last[t] = v;
      });
    }
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const double ops = static_cast<double>(threads * per_thread);
  std::printf("backend      : %s\n", counter->name().c_str());
  std::printf("threads      : %zu\n", threads);
  std::printf("operations   : %.0f\n", ops);
  std::printf("elapsed      : %.3f s\n", elapsed);
  std::printf("throughput   : %.0f ops/s\n", ops / elapsed);
  std::printf("observed stalls: %llu\n",
              static_cast<unsigned long long>(counter->stall_count()));
  // Sanity: every ticket must be unique, so the largest final ticket is
  // below m and at least (m/threads - 1).
  std::int64_t max_seen = -1;
  for (const auto v : last) max_seen = std::max(max_seen, v);
  std::printf("max ticket   : %lld (< %.0f)\n",
              static_cast<long long>(max_seen), ops);
  const bool ok = max_seen < static_cast<std::int64_t>(ops) &&
                  max_seen + 1 >= static_cast<std::int64_t>(per_thread);
  return ok ? 0 : 1;
}
