// Network explorer: construct any network family from the library, print
// its structural summary (depth, balancer census, block decomposition),
// verify the counting/smoothing property, and optionally emit Graphviz DOT
// — the tool we use to regenerate the paper's figures.
//
// Usage: ./examples/network_explorer <family> <w> [t] [--dot]
//   family: counting | prefix | merging | ladder | fbutterfly | bbutterfly |
//           bitonic | periodic | block | difftree
//   For `merging`, the third argument is delta instead of t.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/butterfly.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/core/ladder.hpp"
#include "cnet/core/merging.hpp"
#include "cnet/topology/dot.hpp"
#include "cnet/topology/quiescent.hpp"
#include "cnet/util/prng.hpp"

namespace {

std::optional<cnet::topo::Topology> build(const std::string& family,
                                          std::size_t w, std::size_t t) {
  using namespace cnet;
  if (family == "counting") return core::make_counting(w, t ? t : w);
  if (family == "prefix") return core::make_counting_prefix(w, t ? t : w);
  if (family == "merging") return core::make_merging(w, t ? t : 2);
  if (family == "ladder") return core::make_ladder(w);
  if (family == "fbutterfly") return core::make_forward_butterfly(w);
  if (family == "bbutterfly") return core::make_backward_butterfly(w);
  if (family == "bitonic") return baselines::make_bitonic(w);
  if (family == "periodic") return baselines::make_periodic(w);
  if (family == "block") return baselines::make_block(w);
  if (family == "difftree") return baselines::make_diffracting_tree(w);
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <family> <w> [t|delta] [--dot]\n"
                 "families: counting prefix merging ladder fbutterfly "
                 "bbutterfly bitonic periodic block difftree\n",
                 argv[0]);
    return 2;
  }
  const std::string family = argv[1];
  const auto w = static_cast<std::size_t>(std::atoll(argv[2]));
  const std::size_t t =
      argc > 3 && std::strncmp(argv[3], "--", 2) != 0
          ? static_cast<std::size_t>(std::atoll(argv[3]))
          : 0;
  const bool want_dot = (argc > 3 && !std::strcmp(argv[argc - 1], "--dot"));

  std::optional<cnet::topo::Topology> net;
  try {
    net = build(family, w, t);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "construction failed: %s\n", e.what());
    return 1;
  }
  if (!net) {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }

  std::printf("%s: %s\n", family.c_str(), net->summary().c_str());
  std::printf("layers:");
  for (const auto& layer : net->layers()) {
    std::printf(" %zu", layer.size());
  }
  std::printf("\n");

  // Verify behaviour on random inputs.
  cnet::util::Xoshiro256 rng(0xE4);
  const auto witness = cnet::topo::check_counting_random(*net, 200, 30, rng);
  if (witness) {
    const auto worst =
        cnet::topo::max_output_smoothness_random(*net, 200, 30, rng);
    std::printf("counting: NO (worst observed output smoothness: %lld)\n",
                static_cast<long long>(worst));
  } else {
    std::printf("counting: yes (200 random + corner inputs all step)\n");
  }

  if (want_dot) {
    std::printf("%s", cnet::topo::to_dot(*net, family).c_str());
  }
  return 0;
}
