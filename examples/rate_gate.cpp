// Rate-limited request gate: the svc::AdmissionController in front of an
// open-loop workload. One refiller thread feeds the token bucket at a fixed
// rate R while the other threads hammer admit(); whatever the offered load,
// the admitted rate is pinned at ~R and every admitted request carries a
// globally-unique ID from the sharded allocator. A miniature of the
// queueing-style serving scenario the ROADMAP aims at: arrival rate set by
// the refiller, service capacity set by the bucket.
//
// Usage: ./examples/rate_gate [backend] [threads] [rate]
//   backend: central-atomic | central-cas | central-mutex | network |
//            batched-network | adaptive, optionally prefixed with "elim+"
//            to put the elimination front-end before the bucket pool
//            (e.g. elim+batched-network)        (default: batched-network)
//   threads: total threads incl. the refiller   (default: 5)
//   rate:    tokens/sec fed to the bucket       (default: 100000)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cnet/svc/admission.hpp"
#include "cnet/svc/elimination.hpp"
#include "cnet/util/cacheline.hpp"
#include "support/loadgen.hpp"

int main(int argc, char** argv) {
  const char* backend_name = argc > 1 ? argv[1] : "batched-network";
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 5;
  const double rate = argc > 3 ? std::atof(argv[3]) : 100000.0;

  const auto spec = cnet::svc::parse_backend_spec(backend_name);
  if (!spec) {
    std::fprintf(stderr, "bad backend \"%s\": %s\n", backend_name,
                 spec.error.c_str());
  }
  if (!spec || threads < 2 || threads > 256 || rate < 1.0) {
    std::fprintf(stderr,
                 "usage: rate_gate [[elim+]central-atomic|central-cas|"
                 "central-mutex|network|batched-network|adaptive] "
                 "[threads>=2] [rate>=1]\n");
    return 2;
  }

  cnet::svc::AdmissionConfig cfg;
  cfg.backend = spec->kind;
  cfg.elimination = spec->elimination;
  cfg.shards = 4;
  cfg.ids.max_threads = threads;
  cnet::svc::AdmissionController gate(cfg);

  // Lifetime tallies (warmup included), one padded slot per thread.
  struct alignas(cnet::util::kCacheLine) Tally {
    std::uint64_t attempts = 0;
    std::uint64_t refilled = 0;
    std::vector<std::int64_t> ids;
  };
  std::vector<Tally> tallies(threads);

  cnet::bench::LoadGenConfig lg;
  lg.threads = threads;
  lg.warmup_seconds = 0.2;
  lg.measure_seconds = 1.0;
  lg.latency_sample_every = 0;

  // Thread 0 drips tokens at `rate`; everyone else is offered load.
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(rate / 200.0));
  const auto chunk_period = std::chrono::duration<double>(chunk / rate);
  const auto result = cnet::bench::run_loadgen(lg, [&](std::size_t t) {
    Tally& tally = tallies[t];
    if (t == 0) {
      tally.refilled += chunk;
      gate.refill(0, chunk);
      std::this_thread::sleep_for(chunk_period);
      return chunk;
    }
    ++tally.attempts;
    const auto ticket = gate.admit(t, 1);
    if (ticket.admitted) tally.ids.push_back(ticket.request_id);
    return std::uint64_t{1};
  });

  std::uint64_t attempts = 0, refilled = 0;
  std::vector<std::int64_t> ids;
  for (const auto& tally : tallies) {
    attempts += tally.attempts;
    refilled += tally.refilled;
    ids.insert(ids.end(), tally.ids.begin(), tally.ids.end());
  }
  const double wall = lg.warmup_seconds + result.seconds;

  std::printf("gate         : %s\n", gate.name().c_str());
  std::printf("threads      : %zu (1 refiller + %zu consumers)\n", threads,
              threads - 1);
  std::printf("token rate   : %.0f/s (refilled %llu over ~%.2fs)\n", rate,
              static_cast<unsigned long long>(refilled), wall);
  std::printf("offered      : %llu attempts (%s)\n",
              static_cast<unsigned long long>(attempts),
              cnet::bench::fmt_rate(attempts / wall).c_str());
  std::printf("admitted     : %zu (%s — pinned at the token rate)\n",
              ids.size(), cnet::bench::fmt_rate(ids.size() / wall).c_str());
  std::printf("rejected     : %llu\n",
              static_cast<unsigned long long>(attempts - ids.size()));
  std::printf("observed stalls: %llu\n",
              static_cast<unsigned long long>(gate.stall_count()));
  if (const auto* elim = dynamic_cast<const cnet::svc::ElimCounter*>(
          &gate.bucket().pool())) {
    std::printf("eliminated pairs: %llu (refill/consume collisions that "
                "never touched the backend; %llu backend traversals)\n",
                static_cast<unsigned long long>(elim->layer().pairs()),
                static_cast<unsigned long long>(elim->traversal_count()));
  }

  // Safety checks: never over-admit, and no request ID handed out twice.
  const bool bounded = ids.size() <= refilled;
  std::sort(ids.begin(), ids.end());
  const bool unique =
      std::adjacent_find(ids.begin(), ids.end()) == ids.end();
  std::printf("admitted <= refilled: %s\n", bounded ? "yes" : "VIOLATED");
  std::printf("request IDs unique  : %s\n", unique ? "yes" : "VIOLATED");
  return bounded && unique ? 0 : 1;
}
