// Contention laboratory: run the paper's §6 stall-counting experiment on
// any network family with any scheduler from the command line, print the
// per-layer/per-block breakdown, then hammer the same network with real
// threads through the LoadGen harness (CAS-retry discipline) so the
// simulated stall census can be compared with hardware-observed stalls —
// the interactive version of bench_tab_contention / bench_fig_blocks.
//
// Usage: ./examples/contention_lab <family> <w> [t] [n] [scheduler]
//   family:    counting | bitonic | periodic | difftree | ablated
//   scheduler: convoy (default) | greedy | random | rr
//
// Example: ./examples/contention_lab counting 16 64 256 convoy
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "cnet/analysis/bounds.hpp"
#include "cnet/baselines/bitonic.hpp"
#include "cnet/baselines/difftree.hpp"
#include "cnet/baselines/periodic.hpp"
#include "cnet/core/ablation.hpp"
#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"
#include "cnet/sim/contention.hpp"
#include "cnet/util/bitops.hpp"
#include "support/loadgen.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <family> <w> [t] [n] [scheduler]\n"
                 "  family: counting bitonic periodic difftree ablated\n"
                 "  scheduler: convoy greedy random rr\n",
                 argv[0]);
    return 2;
  }
  const std::string family = argv[1];
  const auto w = static_cast<std::size_t>(std::atoll(argv[2]));
  const std::size_t t =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : w;
  const std::size_t n =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 16 * w;
  const std::string sched_name = argc > 5 ? argv[5] : "convoy";

  std::optional<cnet::topo::Topology> net;
  try {
    if (family == "counting") net = cnet::core::make_counting(w, t);
    if (family == "ablated")
      net = cnet::core::make_counting_bitonic_merge(w, t);
    if (family == "bitonic") net = cnet::baselines::make_bitonic(w);
    if (family == "periodic") net = cnet::baselines::make_periodic(w);
    if (family == "difftree")
      net = cnet::baselines::make_diffracting_tree(w);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "construction failed: %s\n", e.what());
    return 1;
  }
  if (!net) {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }

  cnet::sim::ContentionConfig cfg;
  cfg.concurrency = n;
  cfg.generations = 32;
  if (sched_name == "greedy") {
    cfg.scheduler = cnet::sim::SchedulerKind::kGreedyMaxQueue;
  } else if (sched_name == "random") {
    cfg.scheduler = cnet::sim::SchedulerKind::kRandom;
  } else if (sched_name == "rr") {
    cfg.scheduler = cnet::sim::SchedulerKind::kRoundRobin;
  } else if (sched_name != "convoy") {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched_name.c_str());
    return 2;
  }

  const auto report = cnet::sim::measure_contention(*net, cfg);
  std::printf("network : %s\n", net->summary().c_str());
  std::printf("config  : n=%zu, m=%zu tokens, scheduler=%s\n", n,
              report.tokens, cnet::sim::scheduler_name(cfg.scheduler));
  std::printf("stalls/token: %.3f   (max queue: %zu)\n",
              report.stalls_per_token, report.max_queue);
  if (family == "counting") {
    std::printf("Theorem 6.7 bound: %.1f\n",
                cnet::analysis::counting_contention_bound(w, t, n));
  }
  std::printf("\nper-layer stalls/token:\n");
  const std::size_t lgw = cnet::util::ilog2(w);
  for (std::size_t d = 0; d < report.per_layer.size(); ++d) {
    const char* block = "";
    if (family == "counting" || family == "ablated") {
      block = d + 1 < lgw ? " [Na]" : (d + 1 == lgw ? " [Nb]" : " [Nc]");
    }
    std::printf("  layer %2zu%s: %8.3f\n", d + 1, block,
                report.per_layer[d]);
  }

  // Hardware leg: the same network as a live counter under real threads
  // (capped at 16 — simulated n models logical concurrency, not cores).
  // difftree uses its own runtime, so the compiled-network leg skips it.
  if (family != "difftree") {
    const std::size_t threads = std::clamp<std::size_t>(n, 1, 16);
    cnet::rt::NetworkCounter counter(*net, family,
                                     cnet::rt::BalancerMode::kCasRetry);
    cnet::bench::LoadGenConfig cfg;
    cfg.threads = threads;
    cfg.warmup_seconds = 0.1;
    cfg.measure_seconds = 0.5;
    // stall_count() accumulates over the counter's lifetime; snapshot it
    // when the measured phase opens so stalls/token uses the same window
    // as the token denominator.
    std::uint64_t stall_baseline = 0;
    cfg.on_measure_begin = [&] { stall_baseline = counter.stall_count(); };
    const auto result = cnet::bench::run_loadgen(cfg, [&](std::size_t t) {
      volatile std::int64_t sink = counter.fetch_increment(t);
      (void)sink;
      return std::uint64_t{1};
    });
    std::printf("\nhardware (cas-retry, %zu threads, %.1fs):\n", threads,
                result.seconds);
    std::printf("  throughput  : %s\n",
                cnet::bench::fmt_rate(result.ops_per_sec).c_str());
    if (result.has_latency) {
      std::printf("  latency     : p50 %s  p99 %s\n",
                  cnet::bench::fmt_ns(result.p50_ns).c_str(),
                  cnet::bench::fmt_ns(result.p99_ns).c_str());
    }
    const std::uint64_t stalls = counter.stall_count() - stall_baseline;
    std::printf("  stalls/token: %.3f (%llu stalls / %llu tokens)\n",
                result.total_ops ? static_cast<double>(stalls) /
                                       static_cast<double>(result.total_ops)
                                 : 0.0,
                static_cast<unsigned long long>(stalls),
                static_cast<unsigned long long>(result.total_ops));
  }
  return 0;
}
