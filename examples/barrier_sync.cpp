// Barrier synchronization via a counting network — the second motivating
// application in paper §1.1.
//
// Six threads iterate a toy stencil computation; between iterations they
// synchronize on a CountingBarrier whose arrival counter is a C(4,8)
// counting network. We verify that no thread ever reads a neighbour value
// from the wrong phase (the classic barrier-correctness check).
//
// Build & run:  ./examples/barrier_sync [phases]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/barrier.hpp"
#include "cnet/runtime/network_counter.hpp"

int main(int argc, char** argv) {
  const std::int64_t phases =
      argc > 1 ? std::atoll(argv[1]) : 200;
  constexpr std::size_t kThreads = 6;

  auto counter = std::make_shared<cnet::rt::NetworkCounter>(
      cnet::core::make_counting(4, 8), "C(4,8)");
  cnet::rt::CountingBarrier barrier(counter, kThreads);

  // Each thread owns one cell; a phase reads both neighbours' values from
  // the previous phase and writes phase+neighbour sum. If the barrier ever
  // let a thread run ahead, a neighbour would observe a stale/early phase
  // tag and we flag it.
  struct Cell {
    std::atomic<std::int64_t> phase{0};
  };
  std::vector<Cell> cells(kThreads);
  std::atomic<bool> torn{false};

  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t left = (t + kThreads - 1) % kThreads;
        const std::size_t right = (t + 1) % kThreads;
        for (std::int64_t p = 0; p < phases; ++p) {
          // All cells must be exactly at phase p here.
          if (cells[left].phase.load() < p || cells[right].phase.load() < p) {
            torn.store(true);
          }
          cells[t].phase.store(p + 1);
          const std::int64_t done = barrier.arrive_and_wait(t);
          if (done != p) torn.store(true);
        }
      });
    }
  }

  std::printf("%zu threads ran %lld barrier phases on %s\n", kThreads,
              static_cast<long long>(phases), counter->name().c_str());
  std::printf("phase discipline: %s\n", torn.load() ? "FAIL" : "PASS");
  return torn.load() ? 1 : 0;
}
