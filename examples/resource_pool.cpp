// A concurrent resource pool on top of Fetch&Increment / Fetch&Decrement
// (paper §1.4.2): acquiring a resource draws a slot index from the
// counting-network counter; releasing it sends an antitoken through the
// network, which reclaims the most recent slot, semaphore-style.
//
// The demo runs worker threads that acquire up to `capacity` outstanding
// slots (guarded by a semaphore so the outstanding count never goes
// negative, the precondition of Fetch&Decrement) and verifies that after
// all workers drain the pool, the counter is back at zero.
//
// Build & run:  ./examples/resource_pool [workers] [ops-per-worker]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <semaphore>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"

int main(int argc, char** argv) {
  const std::size_t workers =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6;
  const std::size_t ops =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 5000;
  constexpr std::ptrdiff_t kCapacity = 64;

  cnet::rt::NetworkCounter counter(cnet::core::make_counting(8, 16),
                                   "C(8,16)");
  // counting_semaphore enforces inc-count >= dec-count (the §1.4.2
  // precondition); the counting network hands out/reclaims the slots.
  std::counting_semaphore<kCapacity> available(kCapacity);
  std::vector<std::int64_t> peaks(workers, 0);

  {
    std::vector<std::jthread> team;
    for (std::size_t t = 0; t < workers; ++t) {
      team.emplace_back([&, t] {
        for (std::size_t i = 0; i < ops; ++i) {
          available.acquire();
          const std::int64_t slot = counter.fetch_increment(t);
          peaks[t] = std::max(peaks[t], slot);
          // ... use resource `slot % kCapacity` ...
          (void)counter.fetch_decrement(t);
          available.release();
        }
      });
    }
  }
  std::int64_t peak = 0;
  for (const auto p : peaks) peak = std::max(peak, p);

  // Fully drained: the next acquisition must restart at 0.
  const std::int64_t probe = counter.fetch_increment(0);
  std::printf("%zu workers x %zu acquire/release cycles through %s\n",
              workers, ops, counter.name().c_str());
  std::printf("highest outstanding slot seen: %lld (capacity %lld)\n",
              static_cast<long long>(peak),
              static_cast<long long>(kCapacity));
  std::printf("post-drain probe ticket: %lld (expected 0): %s\n",
              static_cast<long long>(probe),
              probe == 0 ? "PASS" : "FAIL");
  return probe == 0 ? 0 : 1;
}
