// Quickstart: a shared Fetch&Increment counter backed by the paper's
// irregular counting network C(w, t).
//
// Eight threads concurrently draw values from a C(4,8)-backed counter; we
// then verify that the values handed out are exactly 0..m-1 (no gaps, no
// duplicates) — the defining property of a counting network used as a
// distributed counter (paper §1.1).
//
// Build & run:  ./examples/quickstart
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "cnet/core/counting.hpp"
#include "cnet/runtime/network_counter.hpp"

int main() {
  // 1. Build the network topology: input width w=4, output width t=8.
  const auto topology = cnet::core::make_counting(/*w=*/4, /*t=*/8);
  std::printf("network: %s\n", topology.summary().c_str());

  // 2. Compile it into a lock-free shared-memory counter.
  cnet::rt::NetworkCounter counter(topology, "C(4,8)");

  // 3. Hammer it from 8 threads.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::vector<std::int64_t>> values(kThreads);
  {
    std::vector<std::jthread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&counter, &values, t] {
        values[t].reserve(kPerThread);
        for (std::size_t i = 0; i < kPerThread; ++i) {
          values[t].push_back(counter.fetch_increment(t));
        }
      });
    }
  }  // jthreads join here

  // 4. Verify: the union of all values must be exactly {0, ..., m-1}.
  std::vector<std::int64_t> all;
  for (const auto& v : values) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  bool exact = true;
  for (std::size_t i = 0; i < all.size(); ++i) {
    exact &= all[i] == static_cast<std::int64_t>(i);
  }
  std::printf("drew %zu values from %zu threads: %s\n", all.size(), kThreads,
              exact ? "exactly 0..m-1 (PASS)" : "MISSING/DUPLICATE (FAIL)");
  return exact ? 0 : 1;
}
